(* Causal per-message spans over the virtual clock.

   A span is minted when a message enters the system (UAM send, TCP
   segment emission, raw descriptor push) and its context — a (trace id,
   span id) pair — rides the message's bytes through every layer:
   descriptor, mux, NI, AAL5 cells, switch ports, and back up the
   receive path. Layers do not open or close anything; they stamp
   *milestones* (marks) onto the span as the bytes pass. Phase
   attribution is derived afterwards from the milestone deltas, so the
   hot path stays a couple of array writes.

   Like Trace and Metrics this store is process-global: simulators are
   created deep inside library code and exactly one is live at a time,
   so [Sim.create] registers its clock here. *)

type ctx = { trace_id : int; span_id : int; minted_at : int }

type mark =
  | Doorbell
  | Nic_tx
  | Injected
  | Link_tx
  | Switch_in
  | Switch_out
  | Rx_cell
  | Demuxed
  | Popped
  | Dispatched
  | Dropped

let mark_index = function
  | Doorbell -> 0
  | Nic_tx -> 1
  | Injected -> 2
  | Switch_in -> 3
  | Switch_out -> 4
  | Link_tx -> 5
  | Rx_cell -> 6
  | Demuxed -> 7
  | Popped -> 8
  | Dispatched -> 9
  | Dropped -> 10

let n_marks = 11

let mark_name = function
  | Doorbell -> "doorbell"
  | Nic_tx -> "nic_tx"
  | Injected -> "injected"
  | Link_tx -> "link_tx"
  | Switch_in -> "switch_in"
  | Switch_out -> "switch_out"
  | Rx_cell -> "rx_cell"
  | Demuxed -> "demuxed"
  | Popped -> "popped"
  | Dispatched -> "dispatched"
  | Dropped -> "dropped"

(* The phase a milestone *ends*, in canonical data-path order. Marks use
   replacement semantics (the latest write wins — e.g. [Link_tx] fires on
   the uplink and again on the switch's output link), and phases are
   computed only from the final values, walking consecutive *present*
   milestones so the deltas telescope: they sum exactly to
   last-milestone − mint time. A missing milestone contributes zero and
   its time folds into the next present phase. *)
let milestones =
  [|
    (Doorbell, "send_cpu");
    (Nic_tx, "doorbell_to_nic");
    (Injected, "nic_tx");
    (Switch_in, "wire_up");
    (Switch_out, "switch_transit");
    (Link_tx, "switch_queue");
    (Rx_cell, "wire_down");
    (Demuxed, "rx_demux");
    (Popped, "ring_wait");
    (Dispatched, "dispatch");
  |]

let phase_names = Array.to_list (Array.map snd milestones)

(* [Dropped] is deliberately absent from [milestones]: a fault can kill a
   mid-PDU cell whose EOP still lands milestones later, and a
   phase-attributed drop would then yield a negative delta. It is exported
   with the other marks but contributes no phase. *)
let export_marks = Array.append (Array.map fst milestones) [| Dropped |]
let no_mark = min_int

type span = {
  id : int;
  trace_id : int;
  parent : int option;
  name : string;
  host : int;
  minted : int; (* virtual ns at mint *)
  marks : int array; (* indexed by mark_index; no_mark when unset *)
  mutable observed : bool; (* histograms fed at most once per span *)
}

let on = ref false
let clock : (unit -> int) ref = ref (fun () -> 0)
let next_id = ref 0
let store : (int, span) Hashtbl.t = Hashtbl.create 256
let order : span list ref = ref [] (* newest first *)
let enabled () = !on

(* Observer granularity (DESIGN.md §15): [Per_train] (the default) keeps
   the cell-train fast path engaged — EOP milestones of planned trains
   are synthesized from plan records via [mark_at] at exactly the
   instants the per-cell path would stamp them; [Per_cell] pins the
   per-cell path so every mark is a real event. *)
let granularity_ref = ref Granularity.Per_train
let granularity () = !granularity_ref
let set_granularity g = granularity_ref := g

let start () =
  Hashtbl.reset store;
  order := [];
  next_id := 0;
  on := true

let stop () = on := false

let clear () =
  Hashtbl.reset store;
  order := [];
  next_id := 0

let attach_clock f = clock := f

let mint ~(parent : ctx option) ~host name =
  incr next_id;
  let id = !next_id in
  let trace_id, parent =
    match parent with
    | None -> (id, None)
    | Some p -> (p.trace_id, Some p.span_id)
  in
  let minted = !clock () in
  (* when collection is off, mint a context but retain nothing — hot
     paths may mint per message and must not grow the store. The mint
     time always rides the context so the latency sketch works with
     collection off. *)
  if !on then begin
    let s =
      {
        id;
        trace_id;
        parent;
        name;
        host;
        minted;
        marks = Array.make n_marks no_mark;
        observed = false;
      }
    in
    Hashtbl.replace store id s;
    order := s :: !order
  end;
  { trace_id; span_id = id; minted_at = minted }

let root ?(host = 0) name = mint ~parent:None ~host name
let child ?(host = 0) name parent = mint ~parent:(Some parent) ~host name

(* Flow events stitch the span's milestones into the Chrome trace so
   Perfetto draws an arrow from the send side to the receive side of the
   same message. The flow id is the span id. *)
let emit_flow s m =
  let name = "flow:" ^ s.name in
  match m with
  | Doorbell -> Trace.flow_start ~tid:s.host ~id:s.id Trace.Desc name
  | Switch_in -> Trace.flow_step ~tid:s.host ~id:s.id Trace.Cell name
  | Popped -> Trace.flow_end ~tid:s.host ~id:s.id Trace.Desc name
  | _ -> ()

let mark ctx m =
  if !on then
    match ctx with
    | None -> ()
    | Some { span_id; _ } -> (
        match Hashtbl.find_opt store span_id with
        | None -> ()
        | Some s ->
            s.marks.(mark_index m) <- !clock ();
            if Trace.enabled () then emit_flow s m)

(* Train-granular milestones (DESIGN.md §15): plan commits know the exact
   instant each EOP milestone will occur, so the fast path stamps them
   analytically. No flow emission — flow arrows carry the emission-time
   clock, which would lie about a future milestone; the real Doorbell and
   Popped marks still anchor the arrow. *)
let mark_at ctx m ~t =
  if !on then
    match ctx with
    | None -> ()
    | Some { span_id; _ } -> (
        match Hashtbl.find_opt store span_id with
        | None -> ()
        | Some s -> s.marks.(mark_index m) <- t)

(* Erase a synthesized milestone: a truncated train's cut cells re-run the
   per-cell path, which re-stamps whatever actually happens (possibly a
   Dropped instead of the planned future). *)
let unmark ctx m =
  if !on then
    match ctx with
    | None -> ()
    | Some { span_id; _ } -> (
        match Hashtbl.find_opt store span_id with
        | None -> ()
        | Some s -> s.marks.(mark_index m) <- no_mark)

(* --- per-message latency sketch -------------------------------------- *)

(* Always on: every context carries its mint time, so message latency
   (mint -> rx-ring delivery) folds into a bounded-memory sketch whether
   or not span collection runs. Registered lazily on the first delivery,
   like Trace's drop counter, so runs with no deliveries keep their
   metric dumps unchanged. *)
let latency_sketch = ref None

let latency () =
  match !latency_sketch with
  | Some s -> s
  | None ->
      let s =
        Metrics.sketch
          ~help:
            "Per-message latency from mint (API send) to rx-ring delivery \
             (ns), as a 1% relative-error quantile sketch"
          "message_latency_ns" []
      in
      latency_sketch := Some s;
      s

let observe_latency ctx =
  match ctx with
  | None -> ()
  | Some { minted_at; _ } ->
      Metrics.Sketch.observe (latency ())
        (float_of_int (!clock () - minted_at))

let spans () = List.rev !order
let find id = Hashtbl.find_opt store id
let count () = Hashtbl.length store
let mark_time s m = if s.marks.(mark_index m) = no_mark then None else Some s.marks.(mark_index m)

(* --- phase attribution ---------------------------------------------- *)

(* [(phase, delta_ns)] for the milestones present on [s]; deltas
   telescope to (last present milestone − minted). *)
let phases s =
  let prev = ref s.minted in
  Array.to_list milestones
  |> List.filter_map (fun (m, name) ->
         let t = s.marks.(mark_index m) in
         if t = no_mark then None
         else begin
           let d = t - !prev in
           prev := t;
           Some (name, d)
         end)

let journey s =
  let last = Array.fold_left max no_mark s.marks in
  if last = no_mark then None else Some (last - s.minted)

let phase_hist =
  let tbl : (string, Metrics.Histogram.t) Hashtbl.t = Hashtbl.create 16 in
  fun phase ->
    match Hashtbl.find_opt tbl phase with
    | Some h -> h
    | None ->
        let h =
          Metrics.histogram
            ~help:"Per-message latency attributed to a data-path phase (ns)"
            "span_phase_ns"
            [ ("phase", phase) ]
        in
        Hashtbl.replace tbl phase h;
        h

(* Aggregate attribution over every completed span (one that reached at
   least one milestone). Feeds the per-phase histograms exactly once per
   span, however often it is called. *)
type agg = { phase : string; p_count : int; total_ns : int }

let attribution () =
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let ps = phases s in
      if ps <> [] && not s.observed then begin
        s.observed <- true;
        List.iter
          (fun (p, d) -> Metrics.Histogram.observe (phase_hist p) (float_of_int d))
          ps
      end;
      List.iter
        (fun (p, d) ->
          let c, t =
            Option.value ~default:(0, 0) (Hashtbl.find_opt totals p)
          in
          Hashtbl.replace totals p (c + 1, t + d))
        ps)
    (spans ());
  List.filter_map
    (fun phase ->
      match Hashtbl.find_opt totals phase with
      | None -> None
      | Some (c, t) -> Some { phase; p_count = c; total_ns = t })
    phase_names

let pp_attribution fmt () =
  let rows = attribution () in
  let grand = List.fold_left (fun a r -> a + r.total_ns) 0 rows in
  Format.fprintf fmt "%-16s %8s %12s %10s@." "phase" "spans" "total_us"
    "mean_us";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-16s %8d %12.2f %10.2f@." r.phase r.p_count
        (float_of_int r.total_ns /. 1e3)
        (float_of_int r.total_ns /. float_of_int r.p_count /. 1e3))
    rows;
  Format.fprintf fmt "%-16s %8s %12.2f@." "total" ""
    (float_of_int grand /. 1e3)

(* --- span tree JSON export ------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_span b s =
  Buffer.add_string b (Printf.sprintf "{\"id\":%d,\"trace_id\":%d" s.id s.trace_id);
  (match s.parent with
  | None -> ()
  | Some p -> Buffer.add_string b (Printf.sprintf ",\"parent\":%d" p));
  Buffer.add_string b ",\"name\":\"";
  escape b s.name;
  Buffer.add_string b (Printf.sprintf "\",\"host\":%d,\"minted\":%d" s.host s.minted);
  Buffer.add_string b ",\"marks\":{";
  let first = ref true in
  Array.iter
    (fun m ->
      match mark_time s m with
      | None -> ()
      | Some t ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_char b '"';
          Buffer.add_string b (mark_name m);
          Buffer.add_string b "\":";
          Buffer.add_string b (string_of_int t))
    export_marks;
  Buffer.add_string b "},\"phases\":{";
  List.iteri
    (fun i (p, d) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b p;
      Buffer.add_string b "\":";
      Buffer.add_string b (string_of_int d))
    (phases s);
  Buffer.add_string b "}}"

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      add_span b s)
    (spans ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  output_string oc (to_json ());
  close_out oc
