(** Causal per-message spans with latency attribution.

    A span is minted when a message enters the system (UAM send, TCP
    segment emission, raw U-Net descriptor push); its context rides the
    message's bytes through every layer — descriptor queues, mux, NI
    models, AAL5 cells, switch ports — and back up the receive path.
    Layers stamp {!mark} milestones as the bytes pass; retransmissions
    mint {!child} spans of the original, so a retried message stays one
    connected tree rather than a new root.

    From the finished marks, {!phases} derives a per-message latency
    breakdown whose deltas telescope — they sum exactly to the span's
    journey time — and {!attribution} aggregates it across all spans,
    feeding per-phase [span_phase_ns] histograms in {!Metrics}.

    Process-global, like {!Trace}: [Sim.create] registers the live
    simulator's clock. Disabled by default; when disabled, {!mark} costs
    one boolean read and {!root}/{!child} still mint contexts (cheaply)
    so data structures can carry them unconditionally. *)

type ctx = { trace_id : int; span_id : int; minted_at : int }

type mark =
  | Doorbell  (** descriptor pushed onto the endpoint's tx ring *)
  | Nic_tx  (** NI starts processing the descriptor *)
  | Injected  (** last (EOP) cell of the PDU enters the network *)
  | Link_tx  (** cell serialization starts on a link (latest link wins) *)
  | Switch_in  (** EOP cell arrives at a switch input port *)
  | Switch_out  (** cell routed and handed to the output link *)
  | Rx_cell  (** EOP cell arrives at the receiving NI *)
  | Demuxed  (** mux matched the channel and filled an rx descriptor *)
  | Popped  (** host popped the rx descriptor from the free/rx ring *)
  | Dispatched  (** UAM handler returned *)
  | Dropped
      (** the message (or one of its cells) was discarded — injected
          fault, queue overflow, reassembly failure, or receive-path
          exhaustion. Not part of the phase taxonomy: a retransmission
          appears as a child span, the drop as this mark on the victim. *)

val mark_name : mark -> string

val enabled : unit -> bool

val granularity : unit -> Granularity.t
val set_granularity : Granularity.t -> unit
(** [Per_train] (the default) keeps the cell-train fast path engaged:
    EOP milestones of committed trains are synthesized from plan records
    at exactly the instants the per-cell path would stamp them, so span
    dumps stay byte-identical across modes. [Per_cell] pins the slow
    path (every mark is a real event). *)

val start : unit -> unit
(** Enable span collection into a fresh store. *)

val stop : unit -> unit
val clear : unit -> unit
val attach_clock : (unit -> int) -> unit

val root : ?host:int -> string -> ctx
(** Mint a new root span (a fresh trace). *)

val child : ?host:int -> string -> ctx -> ctx
(** Mint a span in the parent's trace — retransmits, replies, acks. *)

val mark : ctx option -> mark -> unit
(** Stamp a milestone at the current virtual time. Marks replace: the
    latest write wins (phases are computed from final values only).
    Emits Chrome flow events into {!Trace} at [Doorbell] / [Switch_in] /
    [Popped] when tracing is on, linking send and receive sides. *)

val mark_at : ctx option -> mark -> t:int -> unit
(** Stamp a milestone at an explicit virtual time — the train-granular
    backend, fed from plan commits that know each milestone's exact
    future instant. Never emits flow events. *)

val unmark : ctx option -> mark -> unit
(** Erase a milestone. Used by train truncation listeners: cut cells
    re-run the per-cell path, which re-stamps what actually happens. *)

val observe_latency : ctx option -> unit
(** Fold (now − mint time) into the [message_latency_ns] quantile sketch
    in {!Metrics} (registered on first use). Works with span collection
    off: every context carries its mint time. *)

val latency : unit -> Metrics.Sketch.t
(** The [message_latency_ns] sketch (registering it if needed). *)

(** {2 Reading finished spans} *)

type span = {
  id : int;
  trace_id : int;
  parent : int option;
  name : string;
  host : int;
  minted : int;  (** virtual ns when the span was minted *)
  marks : int array;  (** internal; read via {!mark_time} *)
  mutable observed : bool;  (** internal: histogram feed guard *)
}

val spans : unit -> span list
(** All spans, oldest first. *)

val find : int -> span option
val count : unit -> int
val mark_time : span -> mark -> int option

val phases : span -> (string * int) list
(** Per-phase latency in virtual ns, from consecutive present
    milestones. Telescoping: the deltas sum exactly to
    (last milestone − mint time). *)

val journey : span -> int option
(** (last milestone − mint time), or [None] if nothing was marked. *)

val phase_names : string list
(** The phase taxonomy, in canonical data-path order. *)

type agg = { phase : string; p_count : int; total_ns : int }

val attribution : unit -> agg list
(** Aggregate {!phases} over every span; feeds the [span_phase_ns]
    histograms (once per span, however often this is called). *)

val pp_attribution : Format.formatter -> unit -> unit
(** The table2-style per-phase report. *)

val to_json : unit -> string
(** Span trees as a JSON array (ids, parentage, marks, phases). *)

val write_file : string -> unit
