(** Discrete-event simulation core: a virtual clock in nanoseconds and a
    priority queue of pending events. Events scheduled for the same instant
    fire in FIFO order of scheduling, which makes runs fully deterministic. *)

type time = int
(** Simulated time in nanoseconds. OCaml's native [int] gives 62 bits, i.e.
    over a century of simulated time. *)

type t
(** A simulation instance: clock + event queue. *)

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> time
(** Current virtual time. *)

val global_now : t -> time
(** Cumulative virtual time: this instance's clock plus the final clocks
    of every simulator instance created before it. Monotone across
    [create] calls; it is what [Profile]/[Timeseries]/[Recorder] see. *)

val schedule_at : ?label:string -> t -> time -> (unit -> unit) -> handle
(** [schedule_at sim t f] runs [f] when the clock reaches [t]. [t] must not be
    in the past. [label] names the event kind for the wall-clock
    self-profiler ([Selfprof]); pass a static string — it is stored on the
    event record and never copied. *)

val schedule : ?label:string -> t -> delay:time -> (unit -> unit) -> handle
(** [schedule sim ~delay f] runs [f] [delay] nanoseconds from now.
    [delay] must be non-negative. *)

val schedule_drop_at : ?label:string -> t -> time -> (unit -> unit) -> unit
(** Fire-and-forget [schedule_at]: no handle is returned, so the event can
    never be cancelled and its record is recycled through a per-simulator
    free list after firing. Hot per-hop schedule sites that would otherwise
    [ignore] the handle use this to stay allocation-free in steady state. *)

val schedule_drop : ?label:string -> t -> delay:time -> (unit -> unit) -> unit
(** Fire-and-forget [schedule]. See {!schedule_drop_at}. *)

val cancel : handle -> unit
(** Prevent a pending event from firing. Cancelling an already-fired or
    already-cancelled event is a no-op. A cancelled-but-scheduled event
    stays in the queue as a tombstone until popped; it is counted in
    [sim_events_total{outcome=cancelled}]. *)

val step : t -> bool
(** Fire the next pending event, advancing the clock to its timestamp.
    Returns [false] when no events remain. *)

val run : ?until:time -> t -> unit
(** Fire events until the queue is empty, or until the next event lies
    strictly beyond [until] (the clock is then left at [until]). *)

val pending : t -> int
(** Number of scheduled-and-not-cancelled events. *)

(** {2 Event-queue introspection}

    Always-on lifecycle counters ([sim_events_total{outcome}] in the
    metrics registry) accumulated across every simulator instance of the
    process; per-instance queue-depth and tombstone probes are registered
    with [Timeseries] at {!create}, and per-pop cost / same-timestamp
    batch histograms are reported to [Selfprof] while it is enabled. *)

val events_fired : unit -> int
val events_cancelled : unit -> int

val tombstone_ratio : unit -> float
(** Cancelled events as a fraction of all settled (fired + cancelled)
    events — the share of queue traffic that is pure pop-path waste. *)

(* Time unit constructors and conversions. *)

val ns : int -> time
val us : int -> time
val ms : int -> time
val sec : int -> time
val of_us_f : float -> time
val to_us : time -> float
val to_ms : time -> float
val to_sec : time -> float
