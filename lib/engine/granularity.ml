(* Observer granularity for the cell-train fast path (DESIGN.md §15).

   [Per_cell] observers need to see the simulation between the cells of a
   PDU, so an enabled one pins the whole run to the per-cell slow path.
   [Per_train] observers synthesize their output analytically from
   committed plan records, so the fast path stays engaged while they run.
   Each observer module exposes [granularity]/[set_granularity];
   [Trainmode.active] folds them together. *)

type t = Per_cell | Per_train

let name = function Per_cell -> "per_cell" | Per_train -> "per_train"
