(** Deterministic 1-in-N PDU sampling for deep inspection on the fast
    path ([--sample-pdus N]).

    Both NI models call {!next_pdu} exactly once per transmit
    descriptor, before choosing between the cell-train and per-cell
    paths; a hit routes that PDU through the per-cell path where spans,
    trace and pcap see it in full detail, while the rest ride the train.
    Membership is a pure hash of (seed, PDU index), so the sampled set
    is identical across runs with the same seed — and across
    [--per-cell], where the index sequence is the same. *)

val configure : n:int -> seed:int -> unit
(** Sample one PDU in [n] ([n = 0] turns sampling off, [n = 1] samples
    everything). Resets the PDU index. *)

val active : unit -> bool
val n : unit -> int
val seed : unit -> int

val reset : unit -> unit
(** Restart the PDU index and coverage counts (benchmark passes). *)

val decide : seed:int -> n:int -> int -> bool
(** The pure membership test: is PDU [index] sampled? [next_pdu] is
    exactly [decide ~seed ~n] over successive indices. *)

val next_pdu : unit -> bool
(** Advance the PDU index and report whether this PDU is sampled. Also
    feeds [sample_pdus_offered_total] / [sample_pdus_selected_total]
    (registered on first use). *)

val offered : unit -> int
(** PDUs offered since the last {!configure}/{!reset}. *)

val sampled : unit -> int
(** PDUs selected since the last {!configure}/{!reset}. *)
