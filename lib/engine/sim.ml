type time = int

type event = {
  at : time;
  seq : int; (* tie-breaker: FIFO among same-time events *)
  mutable thunk : (unit -> unit) option; (* None once fired or cancelled *)
}

type handle = event

(* Binary min-heap over (at, seq). A simple array-backed heap is enough: the
   simulator's hot loop is push/pop and both are O(log n) with no allocation
   beyond the event records themselves. *)
module Heap = struct
  type t = { mutable a : event array; mutable len : int }

  let dummy = { at = 0; seq = 0; thunk = None }
  let create () = { a = Array.make 256 dummy; len = 0 }

  let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    let a = h.a in
    let i = ref h.len in
    h.len <- h.len + 1;
    a.(!i) <- e;
    (* sift up *)
    while !i > 0 && before a.(!i) a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = a.(p) in
      a.(p) <- a.(!i);
      a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let a = h.a in
      let top = a.(0) in
      h.len <- h.len - 1;
      a.(0) <- a.(h.len);
      a.(h.len) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before a.(l) a.(!smallest) then smallest := l;
        if r < h.len && before a.(r) a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = a.(!smallest) in
          a.(!smallest) <- a.(!i);
          a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let peek h = if h.len = 0 then None else Some h.a.(0)
end

type t = {
  mutable clock : time;
  heap : Heap.t;
  mutable next_seq : int;
  mutable live : int; (* scheduled and not yet fired/cancelled *)
}

(* Cumulative virtual time across simulator instances. Experiments build a
   fresh simulator per sweep point; telemetry that spans a whole run (the
   profiler's elapsed time, timeseries timestamps, the recorder's stall
   clock) needs a clock that keeps climbing instead of restarting at every
   [create]. Each [create] folds the previous instance's final clock into
   the base, so [time_base + clock] is monotone for the whole process. *)
let time_base = ref 0
let last_sim : t option ref = ref None

let create () =
  (match !last_sim with
  | Some prev -> time_base := !time_base + prev.clock
  | None -> ());
  let t = { clock = 0; heap = Heap.create (); next_seq = 0; live = 0 } in
  last_sim := Some t;
  (* the newest simulator stamps trace events, spans and captures
     (exactly one is live at a time in every runner; see Trace) *)
  Trace.attach_clock (fun () -> t.clock);
  Span.attach_clock (fun () -> t.clock);
  Pcapng.attach_clock (fun () -> t.clock);
  let cumulative () = !time_base + t.clock in
  Profile.attach_clock cumulative;
  Timeseries.attach_clock cumulative;
  Recorder.attach_clock cumulative;
  t

let now t = t.clock
let global_now t = !time_base + t.clock
let pending t = t.live

let schedule_at t at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %d is in the past (now %d)" at
         t.clock);
  let e = { at; seq = t.next_seq; thunk = Some f } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap e;
  e

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t (t.clock + delay) f

let cancel (e : handle) =
  match e.thunk with
  | None -> ()
  | Some _ -> e.thunk <- None
(* note: [live] is decremented lazily when the tombstone is popped *)

(* Pop events, skipping tombstones, firing the first live one. The
   telemetry hooks cost one boolean read each when their subsystem is off,
   and never touch the event queue or the clock, so runs with telemetry
   disabled are byte-identical to runs without these lines. *)
let rec step t =
  match Heap.pop t.heap with
  | None -> false
  | Some e -> (
      match e.thunk with
      | None ->
          (* cancelled *)
          t.live <- t.live - 1;
          step t
      | Some f ->
          e.thunk <- None;
          t.live <- t.live - 1;
          t.clock <- e.at;
          if Timeseries.enabled () then Timeseries.on_event (global_now t);
          if Recorder.armed () then Recorder.tick (global_now t);
          f ();
          true)

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.heap with
        | None -> continue := false
        | Some e ->
            if e.at > limit then continue := false
            else if not (step t) then continue := false
      done;
      if t.clock < limit then t.clock <- limit);
  (* a final sample/watchdog check at the end-of-run clock, so a run that
     drains (or coasts to its limit) still observes its last state *)
  if Timeseries.enabled () then Timeseries.on_event (global_now t);
  if Recorder.armed () then Recorder.tick (global_now t)

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_us_f f = int_of_float (Float.round (f *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.
