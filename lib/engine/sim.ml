type time = int

type event = {
  mutable at : time;
  mutable seq : int; (* tie-breaker: FIFO among same-time events *)
  mutable thunk : (unit -> unit) option; (* None once fired or cancelled *)
  mutable label : string; (* static schedule-site kind; "" = unlabeled *)
  pooled : bool; (* allocated by [schedule_drop]: no handle escapes, so the
                    record is recycled through the free list after firing *)
}

(* Binary min-heap over (at, seq). A simple array-backed heap is enough: the
   simulator's hot loop is push/pop and both are O(log n) with no allocation
   beyond the event records themselves. [swaps] counts sift-down swaps so
   the self-profiler can histogram per-pop heap costs; one int increment
   per swap is noise next to the swap itself. *)
module Heap = struct
  type t = { mutable a : event array; mutable len : int }

  let swaps = ref 0
  let dummy = { at = 0; seq = 0; thunk = None; label = ""; pooled = false }
  let min_capacity = 256
  let create () = { a = Array.make min_capacity dummy; len = 0 }

  let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    let a = h.a in
    let i = ref h.len in
    h.len <- h.len + 1;
    a.(!i) <- e;
    (* sift up *)
    while !i > 0 && before a.(!i) a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = a.(p) in
      a.(p) <- a.(!i);
      a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let a = h.a in
      let top = a.(0) in
      h.len <- h.len - 1;
      a.(0) <- a.(h.len);
      a.(h.len) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before a.(l) a.(!smallest) then smallest := l;
        if r < h.len && before a.(r) a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = a.(!smallest) in
          a.(!smallest) <- a.(!i);
          a.(!i) <- tmp;
          incr swaps;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let peek h = if h.len = 0 then None else Some h.a.(0)

  (* Tombstone compaction: drop every cancelled record in one pass and
     re-establish the heap property bottom-up (Floyd). Pop order is a total
     order on (at, seq), so rebuilding cannot change what fires next. The
     sift here deliberately does not touch [swaps]: compaction runs inside
     [schedule], and inflating the per-pop swap deltas would corrupt the
     self-profiler's pop-cost histogram. *)
  let sift_down_quiet h i =
    let a = h.a in
    let i = ref i in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && before a.(l) a.(!smallest) then smallest := l;
      if r < h.len && before a.(r) a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = a.(!smallest) in
        a.(!smallest) <- a.(!i);
        a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done

  let compact h =
    let kept = ref 0 in
    for i = 0 to h.len - 1 do
      let e = h.a.(i) in
      if e.thunk <> None then begin
        h.a.(!kept) <- e;
        incr kept
      end
    done;
    for i = !kept to h.len - 1 do
      h.a.(i) <- dummy
    done;
    h.len <- !kept;
    for i = (h.len / 2) - 1 downto 0 do
      sift_down_quiet h i
    done;
    (* shrink the backing array once occupancy falls below a quarter of
       capacity, so a long run does not hold its high-water array forever *)
    let cap = ref (Array.length h.a) in
    while !cap > min_capacity && h.len * 4 < !cap do
      cap := !cap / 2
    done;
    if !cap < Array.length h.a then begin
      let a' = Array.make !cap dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end
end

type t = {
  mutable clock : time;
  heap : Heap.t;
  mutable next_seq : int;
  mutable live : int; (* scheduled and not yet fired/cancelled *)
  mutable last_fired_at : time; (* same-timestamp batch tracking *)
  mutable batch : int; (* events fired at [last_fired_at] so far *)
  (* free list of recycled [pooled] event records ([schedule_drop]): the
     cell-train fast path schedules its per-hop events through here, so a
     train hop allocates no event record in steady state *)
  mutable pool : event array;
  mutable pool_len : int;
}

(* A handle pairs the event with its owning simulator so [cancel] can drop
   [live] immediately — [len - live] is then exactly the in-heap tombstone
   population read by the compaction trigger and the tombstone probe. *)
type handle = { h_ev : event; h_sim : t }

(* Queue accounting, always on: three int increments per event lifetime.
   [sim_events_total{outcome=cancelled}] counts tombstones — events that
   will be popped and skipped, pure pop-path waste when the ratio climbs
   (see [tombstone_ratio]). *)
let c_scheduled =
  Metrics.counter ~help:"events by lifecycle outcome" "sim_events_total"
    [ ("outcome", "scheduled") ]

let c_fired =
  Metrics.counter ~help:"events by lifecycle outcome" "sim_events_total"
    [ ("outcome", "fired") ]

let c_cancelled =
  Metrics.counter ~help:"events by lifecycle outcome" "sim_events_total"
    [ ("outcome", "cancelled") ]

let events_fired () = Metrics.Counter.value c_fired
let events_cancelled () = Metrics.Counter.value c_cancelled

let tombstone_ratio () =
  let fired = events_fired () and cancelled = events_cancelled () in
  if fired + cancelled = 0 then 0.
  else float_of_int cancelled /. float_of_int (fired + cancelled)

(* Cumulative virtual time across simulator instances. Experiments build a
   fresh simulator per sweep point; telemetry that spans a whole run (the
   profiler's elapsed time, timeseries timestamps, the recorder's stall
   clock) needs a clock that keeps climbing instead of restarting at every
   [create]. Each [create] folds the previous instance's final clock into
   the base, so [time_base + clock] is monotone for the whole process. *)
let time_base = ref 0
let last_sim : t option ref = ref None

let create () =
  (match !last_sim with
  | Some prev -> time_base := !time_base + prev.clock
  | None -> ());
  let t =
    {
      clock = 0;
      heap = Heap.create ();
      next_seq = 0;
      live = 0;
      last_fired_at = -1;
      batch = 0;
      pool = Array.make 64 Heap.dummy;
      pool_len = 0;
    }
  in
  last_sim := Some t;
  (* the newest simulator stamps trace events, spans and captures
     (exactly one is live at a time in every runner; see Trace) *)
  Trace.attach_clock (fun () -> t.clock);
  Span.attach_clock (fun () -> t.clock);
  Pcapng.attach_clock (fun () -> t.clock);
  let cumulative () = !time_base + t.clock in
  Profile.attach_clock cumulative;
  Timeseries.attach_clock cumulative;
  Recorder.attach_clock cumulative;
  (* queue introspection probes, registered after attach_clock so they
     belong to this instance's generation (sampled only while the
     timeseries sampler is on) *)
  Timeseries.register "sim_queue_depth" [] (fun () -> float_of_int t.live);
  Timeseries.register "sim_queue_tombstones" [] (fun () ->
      float_of_int (t.heap.Heap.len - t.live));
  t

let now t = t.clock
let global_now t = !time_base + t.clock
let pending t = t.live

(* Compact once the in-heap tombstone share crosses the same 25% threshold
   the introspection warning uses; checked at schedule time so the cost is
   one comparison on the hot path. *)
let maybe_compact t =
  let len = t.heap.Heap.len in
  if len >= Heap.min_capacity && (len - t.live) * 4 > len then
    Heap.compact t.heap

let schedule_at ?(label = "") t at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %d is in the past (now %d)" at
         t.clock);
  let e = { at; seq = t.next_seq; thunk = Some f; label; pooled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Metrics.Counter.inc c_scheduled;
  maybe_compact t;
  Heap.push t.heap e;
  { h_ev = e; h_sim = t }

let schedule ?label t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at ?label t (t.clock + delay) f

(* Fire-and-forget scheduling: no handle escapes, so the event record comes
   from (and returns to) the per-simulator free list and cannot be
   cancelled. Hot per-hop sites that [ignore (schedule ...)] use this. *)
let schedule_drop_at ?(label = "") t at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_drop_at: time %d is in the past (now %d)"
         at t.clock);
  let e =
    if t.pool_len > 0 then begin
      t.pool_len <- t.pool_len - 1;
      let e = t.pool.(t.pool_len) in
      t.pool.(t.pool_len) <- Heap.dummy;
      e.at <- at;
      e.seq <- t.next_seq;
      e.thunk <- Some f;
      e.label <- label;
      e
    end
    else { at; seq = t.next_seq; thunk = Some f; label; pooled = true }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Metrics.Counter.inc c_scheduled;
  maybe_compact t;
  Heap.push t.heap e

let schedule_drop ?label t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule_drop: negative delay";
  schedule_drop_at ?label t (t.clock + delay) f

let recycle t (e : event) =
  if e.pooled then begin
    if t.pool_len = Array.length t.pool then
      if t.pool_len < 4096 then begin
        let a' = Array.make (2 * t.pool_len) Heap.dummy in
        Array.blit t.pool 0 a' 0 t.pool_len;
        t.pool <- a'
      end
      else ()
    else ();
    if t.pool_len < Array.length t.pool then begin
      e.label <- "";
      t.pool.(t.pool_len) <- e;
      t.pool_len <- t.pool_len + 1
    end
  end

(* Cancellation leaves the record in the heap as a tombstone, but [live]
   drops immediately (see [handle]). Pooled records never reach here:
   [schedule_drop] returns no handle. *)
let cancel { h_ev = e; h_sim = t } =
  match e.thunk with
  | None -> ()
  | Some _ ->
      e.thunk <- None;
      t.live <- t.live - 1;
      Metrics.Counter.inc c_cancelled

(* Same-timestamp batch bookkeeping for the self-profiler: a batch ends
   when a fired event carries a later timestamp (or the run drains). *)
let flush_batch t =
  if t.batch > 0 then begin
    Selfprof.observe_batch t.batch;
    t.batch <- 0
  end

(* Pop events, skipping tombstones, firing the first live one. The
   telemetry hooks cost one boolean read each when their subsystem is off,
   and never touch the event queue or the clock, so runs with telemetry
   disabled are byte-identical to runs without these lines. *)
let step t =
  let selfprof = Selfprof.enabled () in
  let swaps0 = !Heap.swaps in
  let rec loop skipped =
    match Heap.pop t.heap with
    | None -> false
    | Some e -> (
        match e.thunk with
        | None ->
            (* cancelled: a tombstone, pure pop-path waste ([live] already
               dropped at cancel time) *)
            loop (skipped + 1)
        | Some f ->
            e.thunk <- None;
            t.live <- t.live - 1;
            t.clock <- e.at;
            Metrics.Counter.inc c_fired;
            if Timeseries.enabled () then Timeseries.on_event (global_now t);
            if Recorder.armed () then Recorder.tick (global_now t);
            if selfprof then begin
              Selfprof.observe_pop_cost (skipped + !Heap.swaps - swaps0);
              if e.at = t.last_fired_at then t.batch <- t.batch + 1
              else begin
                flush_batch t;
                t.last_fired_at <- e.at;
                t.batch <- 1
              end;
              Selfprof.event_begin ~label:e.label;
              f ();
              Selfprof.event_end ()
            end
            else f ();
            recycle t e;
            true)
  in
  loop 0

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.heap with
        | None -> continue := false
        | Some e ->
            if e.at > limit then continue := false
            else if not (step t) then continue := false
      done;
      if t.clock < limit then t.clock <- limit);
  (* a final sample/watchdog check at the end-of-run clock, so a run that
     drains (or coasts to its limit) still observes its last state *)
  if Selfprof.enabled () then flush_batch t;
  if Timeseries.enabled () then Timeseries.on_event (global_now t);
  if Recorder.armed () then Recorder.tick (global_now t)

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_us_f f = int_of_float (Float.round (f *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.
