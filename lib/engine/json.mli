(** A minimal JSON reader/writer.

    The repository has no JSON dependency by design; this module covers
    the subset our own tools emit — bench snapshots, metric dumps.
    Numbers are held as floats (snapshot values are measurements; 53-bit
    precision is ample). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> t
val write_file : string -> t -> unit

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_float : t -> float option
val to_list : t -> t list option
val to_str : t -> string option
