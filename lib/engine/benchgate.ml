(* Snapshot comparison logic behind bin/benchdiff, as a library so the
   gating rules are testable.

   Two tolerance regimes coexist:

   - the legacy global tolerance, applied symmetrically to curve points,
     checks and the zero-copy counters — right for virtual-time
     measurements, which are deterministic, where any drift in either
     direction is a behavior change;

   - per-metric gates, declared in the *baseline* snapshot under a
     top-level "gates" object and applied to same-named top-level
     numeric members — needed for wall-clock metrics, where run-to-run
     noise is real and only movement in the bad direction is a
     regression. A gate names its tolerance and a direction:
     "lower_is_better" (µs/event, allocs/event — flag only increases),
     "higher_is_better" (events/sec — flag only decreases), or "both".

   The baseline's gates win over the legacy counter rule for the metric
   they name, and an improvement beyond any directional gate's tolerance
   passes silently — wall-clock noise must not be able to flake an
   improvement into a CI failure. *)

type direction = Lower_is_better | Higher_is_better | Both

type gate = { g_tolerance : float; g_direction : direction }

let direction_name = function
  | Lower_is_better -> "lower_is_better"
  | Higher_is_better -> "higher_is_better"
  | Both -> "both"

let direction_of_name = function
  | "lower_is_better" -> Some Lower_is_better
  | "higher_is_better" -> Some Higher_is_better
  | "both" -> Some Both
  | _ -> None

let gate_json g =
  Json.Obj
    [
      ("tolerance", Json.Num g.g_tolerance);
      ("direction", Json.Str (direction_name g.g_direction));
    ]

let gates_json gs = Json.Obj (List.map (fun (k, g) -> (k, gate_json g)) gs)

let gates_of_json j =
  match Json.member "gates" j with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (metric, v) ->
          let tol = Option.bind (Json.member "tolerance" v) Json.to_float in
          let dir =
            match Json.member "direction" v with
            | Some (Json.Str s) -> direction_of_name s
            | _ -> None
          in
          match (tol, dir) with
          | Some g_tolerance, Some g_direction ->
              Some (metric, { g_tolerance; g_direction })
          | _ -> None)
        kvs
  | _ -> []

(* Signed relative drift, positive when the current value exceeds the
   baseline. *)
let signed_delta old_v new_v =
  if old_v = new_v then 0.
  else (new_v -. old_v) /. Float.max (Float.abs old_v) 1e-9

let rel_delta old_v new_v = Float.abs (signed_delta old_v new_v)

(* Does (baseline -> current) violate the gate? Only movement in the
   gate's bad direction beyond its tolerance counts. *)
let violates g ~baseline ~current =
  let d = signed_delta baseline current in
  match g.g_direction with
  | Both -> Float.abs d > g.g_tolerance
  | Lower_is_better -> d > g.g_tolerance
  | Higher_is_better -> -.d > g.g_tolerance

(* --- snapshot accessors ----------------------------------------------- *)

let series j =
  match Json.member "series" j with
  | Some (Json.Obj kvs) ->
      List.map
        (fun (label, v) ->
          let pts =
            match v with
            | Json.List l ->
                List.filter_map
                  (function
                    | Json.List [ a; b ] -> (
                        match (Json.to_float a, Json.to_float b) with
                        | Some x, Some y -> Some (x, y)
                        | _ -> None)
                    | _ -> None)
                  l
            | _ -> []
          in
          (label, pts))
        kvs
  | _ -> []

let checks j =
  match Json.member "checks" j with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (what, v) ->
          match v with Json.Bool b -> Some (what, b) | _ -> None)
        kvs
  | _ -> []

let numeric name j = Option.bind (Json.member name j) Json.to_float

(* every top-level numeric member is a metric worth showing side by side *)
let numeric_members j =
  match j with
  | Json.Obj kvs ->
      List.filter_map
        (fun (k, v) -> match v with Json.Num n -> Some (k, n) | _ -> None)
        kvs
  | _ -> []

(* --- the diff ---------------------------------------------------------- *)

let diff ~tolerance old_j new_j =
  let flagged = ref [] in
  let flag fmt = Format.kasprintf (fun s -> flagged := s :: !flagged) fmt in
  (* checks that went PASS -> FAIL are regressions outright *)
  let new_checks = checks new_j in
  List.iter
    (fun (what, old_ok) ->
      match List.assoc_opt what new_checks with
      | Some new_ok when old_ok && not new_ok ->
          flag "REGRESSION check now fails: %s" what
      | None when old_ok -> flag "MISSING check disappeared: %s" what
      | _ -> ())
    (checks old_j);
  (* curve points, matched by label and x value *)
  let new_series = series new_j in
  List.iter
    (fun (label, old_pts) ->
      match List.assoc_opt label new_series with
      | None -> flag "MISSING series disappeared: %s" label
      | Some new_pts ->
          List.iter
            (fun (x, old_y) ->
              match List.find_opt (fun (x', _) -> x' = x) new_pts with
              | None -> flag "MISSING point %s at x=%g" label x
              | Some (_, new_y) ->
                  if rel_delta old_y new_y > tolerance then
                    flag "DRIFT %s at x=%g: %g -> %g (%+.1f%%)" label x old_y
                      new_y
                      (signed_delta old_y new_y *. 100.))
            old_pts)
    (series old_j);
  (* per-metric gates declared by the baseline (direction-aware) *)
  let gates = gates_of_json old_j in
  List.iter
    (fun (metric, g) ->
      match (numeric metric old_j, numeric metric new_j) with
      | Some o, Some n ->
          if violates g ~baseline:o ~current:n then
            flag "REGRESSION %s: %g -> %g (%+.1f%%, %s beyond %.0f%%)" metric
              o n
              (signed_delta o n *. 100.)
              (direction_name g.g_direction)
              (g.g_tolerance *. 100.)
      | Some _, None -> flag "MISSING gated metric disappeared: %s" metric
      | None, _ -> ())
    gates;
  (* the zero-copy layer's totals (unless a gate overrides them) *)
  List.iter
    (fun name ->
      if not (List.mem_assoc name gates) then
        match (numeric name old_j, numeric name new_j) with
        | Some o, Some n when rel_delta o n > tolerance ->
            flag "DRIFT %s: %.0f -> %.0f" name o n
        | _ -> ())
    [ "buf_copies_total"; "buf_copy_bytes_total" ];
  List.rev !flagged

(* metric table rows: (name, baseline, current) for every top-level
   numeric member of either snapshot *)
let metric_rows old_j new_j =
  let olds = numeric_members old_j in
  let news = numeric_members new_j in
  let keys =
    List.map fst olds
    @ List.filter (fun k -> not (List.mem_assoc k olds)) (List.map fst news)
  in
  List.map
    (fun k -> (k, List.assoc_opt k olds, List.assoc_opt k news))
    keys
