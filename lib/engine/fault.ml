type site = Link_up | Link_down | Switch | Ni

type burst = { p_enter : float; p_exit : float; burst_loss : float }

type spec = {
  seed : int;
  sites : site list;
  loss : float;
  corrupt : float;
  duplicate : float;
  reorder : float;
  reorder_span : int;
  burst : burst option;
  dma_stall : float;
  dma_stall_ns : int;
  rx_overrun : float;
}

let none =
  {
    seed = 42;
    sites = [ Link_up; Link_down ];
    loss = 0.;
    corrupt = 0.;
    duplicate = 0.;
    reorder = 0.;
    reorder_span = 3;
    burst = None;
    dma_stall = 0.;
    dma_stall_ns = 20_000;
    rx_overrun = 0.;
  }

let site_name = function
  | Link_up -> "up"
  | Link_down -> "down"
  | Switch -> "switch"
  | Ni -> "ni"

let pp_spec fmt s =
  let prob name p = if p > 0. then [ Printf.sprintf "%s=%g" name p ] else [] in
  let parts =
    [ Printf.sprintf "seed=%d" s.seed ]
    @ prob "loss" s.loss @ prob "corrupt" s.corrupt @ prob "dup" s.duplicate
    @ prob "reorder" s.reorder
    @ (match s.burst with
      | None -> []
      | Some b ->
          [
            Printf.sprintf "burst_enter=%g" b.p_enter;
            Printf.sprintf "burst_exit=%g" b.p_exit;
            Printf.sprintf "burst_loss=%g" b.burst_loss;
          ])
    @ prob "dma_stall" s.dma_stall @ prob "rx_overrun" s.rx_overrun
    @ [
        Printf.sprintf "at=%s"
          (String.concat "+" (List.map site_name s.sites));
      ]
  in
  Format.pp_print_string fmt (String.concat "," parts)

(* --- spec parsing ----------------------------------------------------- *)

let parse_sites v =
  let one = function
    | "up" -> Ok [ Link_up ]
    | "down" -> Ok [ Link_down ]
    | "link" -> Ok [ Link_up; Link_down ]
    | "switch" -> Ok [ Switch ]
    | "ni" -> Ok [ Ni ]
    | "all" -> Ok [ Link_up; Link_down; Switch; Ni ]
    | s -> Error (Printf.sprintf "unknown fault site %S" s)
  in
  List.fold_left
    (fun acc s ->
      match (acc, one s) with
      | Ok sites, Ok more ->
          Ok (sites @ List.filter (fun x -> not (List.mem x sites)) more)
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    (Ok [])
    (String.split_on_char '+' v)

let parse str =
  let ( let* ) = Result.bind in
  let prob name v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | _ -> Error (Printf.sprintf "%s must be a probability in [0,1]: %S" name v)
  in
  let int_field name v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s must be an integer: %S" name v)
  in
  let burst_of s = Option.value s.burst ~default:{ p_enter = 0.01; p_exit = 0.1; burst_loss = 0.5 } in
  let field s key v =
    match key with
    | "seed" ->
        let* n = int_field "seed" v in
        Ok { s with seed = n }
    | "loss" | "p" ->
        let* p = prob key v in
        Ok { s with loss = p }
    | "corrupt" ->
        let* p = prob key v in
        Ok { s with corrupt = p }
    | "dup" | "duplicate" ->
        let* p = prob key v in
        Ok { s with duplicate = p }
    | "reorder" ->
        let* p = prob key v in
        Ok { s with reorder = p }
    | "reorder_span" ->
        let* n = int_field key v in
        if n < 1 then Error "reorder_span must be >= 1"
        else Ok { s with reorder_span = n }
    | "burst_enter" ->
        let* p = prob key v in
        Ok { s with burst = Some { (burst_of s) with p_enter = p } }
    | "burst_exit" ->
        let* p = prob key v in
        Ok { s with burst = Some { (burst_of s) with p_exit = p } }
    | "burst_loss" ->
        let* p = prob key v in
        Ok { s with burst = Some { (burst_of s) with burst_loss = p } }
    | "dma_stall" ->
        let* p = prob key v in
        Ok { s with dma_stall = p }
    | "dma_stall_ns" ->
        let* n = int_field key v in
        if n < 0 then Error "dma_stall_ns must be >= 0"
        else Ok { s with dma_stall_ns = n }
    | "rx_overrun" ->
        let* p = prob key v in
        Ok { s with rx_overrun = p }
    | "at" ->
        let* sites = parse_sites v in
        Ok { s with sites }
    | k -> Error (Printf.sprintf "unknown fault spec key %S" k)
  in
  String.split_on_char ',' str
  |> List.filter (fun kv -> String.trim kv <> "")
  |> List.fold_left
       (fun acc kv ->
         let* s = acc in
         match String.index_opt kv '=' with
         | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
         | Some i ->
             field s
               (String.trim (String.sub kv 0 i))
               (String.trim (String.sub kv (i + 1) (String.length kv - i - 1))))
       (Ok none)

(* --- injectors -------------------------------------------------------- *)

type t = {
  fspec : spec;
  rng : Rng.t;
  mutable in_burst : bool;
  mutable count : int;
  counters : (string * Metrics.Counter.t) list; (* by kind *)
}

type decision = Pass | Drop | Corrupt | Duplicate | Reorder of int

let kinds = [ "drop"; "corrupt"; "duplicate"; "reorder"; "dma_stall"; "rx_overrun" ]
let total = ref 0
let injected_total () = !total

(* deterministic string hash (FNV-1a) so per-site streams depend only on
   (seed, site name), never on process state *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h

let create ~site fspec =
  let t =
    {
      fspec;
      rng = Rng.create (fspec.seed lxor fnv1a site);
      in_burst = false;
      count = 0;
      counters =
        List.map
          (fun kind ->
            ( kind,
              Metrics.counter
                ~help:"faults injected by the deterministic fault layer"
                "fault_injected_total"
                [ ("kind", kind); ("site", site) ] ))
          kinds;
    }
  in
  Timeseries.register ~kind:Timeseries.Rate "fault_injected_rate"
    [ ("site", site) ]
    (fun () -> float_of_int t.count);
  t

let spec t = t.fspec
let injected t = t.count

let count t kind =
  t.count <- t.count + 1;
  incr total;
  Metrics.Counter.inc (List.assoc kind t.counters)

let effective_loss t =
  match t.fspec.burst with
  | None -> t.fspec.loss
  | Some b ->
      (* one transition draw per cell keeps the chain's dwell times
         geometric regardless of the other policies *)
      if t.in_burst then begin
        if Rng.bernoulli t.rng ~p:b.p_exit then t.in_burst <- false
      end
      else if Rng.bernoulli t.rng ~p:b.p_enter then t.in_burst <- true;
      if t.in_burst then b.burst_loss else t.fspec.loss

let decide t =
  let s = t.fspec in
  let loss = effective_loss t in
  if loss > 0. && Rng.bernoulli t.rng ~p:loss then begin
    count t "drop";
    Drop
  end
  else if s.corrupt > 0. && Rng.bernoulli t.rng ~p:s.corrupt then begin
    count t "corrupt";
    Corrupt
  end
  else if s.duplicate > 0. && Rng.bernoulli t.rng ~p:s.duplicate then begin
    count t "duplicate";
    Duplicate
  end
  else if s.reorder > 0. && Rng.bernoulli t.rng ~p:s.reorder then begin
    count t "reorder";
    Reorder (1 + Rng.int t.rng s.reorder_span)
  end
  else Pass

let drops t =
  let loss = effective_loss t in
  if loss > 0. && Rng.bernoulli t.rng ~p:loss then begin
    count t "drop";
    true
  end
  else false

let dma_stall t =
  if t.fspec.dma_stall > 0. && Rng.bernoulli t.rng ~p:t.fspec.dma_stall then begin
    count t "dma_stall";
    t.fspec.dma_stall_ns
  end
  else 0

let rx_overrun t =
  if t.fspec.rx_overrun > 0. && Rng.bernoulli t.rng ~p:t.fspec.rx_overrun
  then begin
    count t "rx_overrun";
    true
  end
  else false

let corrupt_bytes t b =
  if Bytes.length b > 0 then begin
    let i = Rng.int t.rng (Bytes.length b) in
    Bytes.set_uint8 b i
      (Bytes.get_uint8 b i lxor (1 + Rng.int t.rng 255))
  end

(* --- global configuration --------------------------------------------- *)

let global : spec option ref = ref None
let configure s = global := s
let configured () = !global

let configured_at kind ~site =
  match !global with
  | Some s when List.mem kind s.sites -> Some (create ~site s)
  | _ -> None
