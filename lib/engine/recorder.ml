(* A bounded flight recorder with a stall watchdog.

   Sender-side protocols (UAM, TCP) report per-flow pending state — "I
   have unacked data" — and receivers report per-flow deliveries; queue
   owners register snapshot callbacks that serialize their current state
   (ring occupancy, port queues, window contents) to JSON on demand. The
   watchdog, ticked from the simulator's event loop, declares a flow
   stalled when it has had unacked data for longer than [deadline] with
   *nothing* delivered — on that flow or anywhere else — since the
   pending epoch began.

   The delivery conditions are what separate a genuinely black-holed
   sender from the benign end-of-run shape where a final message stays
   unacked because its receiver finished and stopped polling: there the
   data (and its retransmitted duplicates) still *arrives* in the
   receiver's rings — the mux counts those as global deliveries even
   when no application ever consumes them — which exonerates the flow,
   whereas a black-holed flow's traffic vanishes and the whole fabric
   goes quiet with data still owed. Flows
   are generation-scoped like timeseries probes, so leftover pending
   state from a previous simulator instance can't trigger on a later one.

   On trigger (stall, or an explicit [trigger ~reason] for failed
   experiment checks) the recorder disarms — exactly one bundle per
   arming — and dumps a post-mortem bundle: recent trace events, every
   registered snapshot, the metrics registry, timeseries so far, the
   profile so far, and a manifest with the reason and flow table. The
   bundle is written as files under [dir] and kept in memory for tests. *)

type flow = {
  mutable fl_pending : int;
  mutable fl_since : int; (* when the current pending epoch began *)
  mutable fl_delivered : int; (* last delivery on this flow; -1 = never *)
  mutable fl_gave_up : bool;
  mutable fl_gen : int;
}

type trigger_info = { tr_reason : string; tr_at : int; tr_dir : string }

let armed_flag = ref false
let bundle_dir = ref "postmortem"
let deadline_ns = ref 2_000_000_000 (* 2 simulated seconds *)
let recent_events = ref 256
let clock : (unit -> int) ref = ref (fun () -> 0)
let generation = ref 0
let flows : (string, flow) Hashtbl.t = Hashtbl.create 16
let flow_order : string list ref = ref [] (* reversed *)
let snapshots : (string, unit -> Json.t) Hashtbl.t = Hashtbl.create 16
let snapshot_order : string list ref = ref [] (* reversed *)
let last_delivery_global = ref (-1)
let last_trigger_ref : trigger_info option ref = ref None
let trigger_count_ref = ref 0
let last_bundle_ref : (string * Json.t) list ref = ref []

let armed () = !armed_flag

let attach_clock f =
  clock := f;
  incr generation

let clear_flows () =
  Hashtbl.reset flows;
  flow_order := [];
  last_delivery_global := -1

let start ?(dir = "postmortem") ?(deadline = 2_000_000_000) ?(recent = 256)
    () =
  bundle_dir := dir;
  deadline_ns := deadline;
  recent_events := recent;
  clear_flows ();
  last_trigger_ref := None;
  trigger_count_ref := 0;
  last_bundle_ref := [];
  armed_flag := true

let stop () = armed_flag := false
let last_trigger () = !last_trigger_ref
let trigger_count () = !trigger_count_ref
let last_bundle () = !last_bundle_ref

let register_snapshot name fn =
  if not (Hashtbl.mem snapshots name) then
    snapshot_order := name :: !snapshot_order;
  Hashtbl.replace snapshots name fn

let flow key =
  match Hashtbl.find_opt flows key with
  | Some fl ->
      if fl.fl_gen <> !generation then begin
        (* stale state from a previous simulator instance: restart it *)
        fl.fl_gen <- !generation;
        fl.fl_pending <- 0;
        fl.fl_since <- !clock ();
        fl.fl_delivered <- -1;
        fl.fl_gave_up <- false
      end;
      fl
  | None ->
      let fl =
        {
          fl_pending = 0;
          fl_since = !clock ();
          fl_delivered = -1;
          fl_gave_up = false;
          fl_gen = !generation;
        }
      in
      Hashtbl.replace flows key fl;
      flow_order := key :: !flow_order;
      fl

let sender_pending ~key n =
  if !armed_flag then begin
    let fl = flow key in
    (* any change marks a fresh epoch: growth restarts the clock only on
       the 0 -> n edge, shrinkage (ack progress) always does *)
    if (fl.fl_pending = 0 && n > 0) || n < fl.fl_pending then
      fl.fl_since <- !clock ();
    fl.fl_pending <- n
  end

let flow_delivered ~key =
  if !armed_flag then begin
    let now = !clock () in
    (flow key).fl_delivered <- now;
    last_delivery_global := now
  end

let note_delivery () =
  if !armed_flag then last_delivery_global := !clock ()

let gave_up ~key = if !armed_flag then (flow key).fl_gave_up <- true

(* --- the post-mortem bundle ------------------------------------------ *)

let arg_json = function
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float f -> Json.Num f
  | Trace.Str s -> Json.Str s

let event_json (e : Trace.event) =
  Json.Obj
    [
      ("ts", Json.Num (float_of_int e.ts));
      ("cat", Json.Str (Trace.category_name e.cat));
      ("name", Json.Str e.name);
      ("tid", Json.Num (float_of_int e.tid));
      ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) e.args));
    ]

let recent_events_json () =
  let evs = Trace.events () in
  let n = List.length evs in
  let tail =
    if n <= !recent_events then evs
    else List.filteri (fun i _ -> i >= n - !recent_events) evs
  in
  Json.List (List.map event_json tail)

let snapshots_json () =
  Json.Obj
    (List.rev_map
       (fun name ->
         let v =
           try (Hashtbl.find snapshots name) ()
           with exn -> Json.Str ("snapshot failed: " ^ Printexc.to_string exn)
         in
         (name, v))
       !snapshot_order)

let flows_json now =
  Json.Obj
    (List.rev_map
       (fun key ->
         let fl = Hashtbl.find flows key in
         ( key,
           Json.Obj
             [
               ("pending", Json.Num (float_of_int fl.fl_pending));
               ("since_ns", Json.Num (float_of_int fl.fl_since));
               ( "stalled_ns",
                 Json.Num
                   (float_of_int
                      (if fl.fl_pending > 0 then now - fl.fl_since else 0))
               );
               ("last_delivery_ns", Json.Num (float_of_int fl.fl_delivered));
               ("gave_up", Json.Bool fl.fl_gave_up);
               ("current_generation", Json.Bool (fl.fl_gen = !generation));
             ] ))
       !flow_order)

let build_bundle ~reason now =
  let manifest =
    Json.Obj
      [
        ("reason", Json.Str reason);
        ("virtual_time_ns", Json.Num (float_of_int now));
        ("deadline_ns", Json.Num (float_of_int !deadline_ns));
        ( "last_delivery_ns",
          Json.Num (float_of_int !last_delivery_global) );
        ("flows", flows_json now);
      ]
  in
  [
    ("manifest", manifest);
    ("snapshots", snapshots_json ());
    ("events", recent_events_json ());
  ]

let write_bundle bundle =
  try
    (try Sys.mkdir !bundle_dir 0o755 with Sys_error _ -> ());
    List.iter
      (fun (name, json) ->
        Json.write_file (Filename.concat !bundle_dir (name ^ ".json")) json)
      bundle;
    (* textual companions from the other telemetry registries *)
    let write name s =
      let oc = open_out (Filename.concat !bundle_dir name) in
      output_string oc s;
      close_out oc
    in
    write "metrics.prom" (Metrics.to_prometheus_string ());
    if Timeseries.enabled () then
      Json.write_file
        (Filename.concat !bundle_dir "timeseries.json")
        (Timeseries.to_json ());
    if Profile.enabled () then
      write "profile.folded" (Profile.to_folded_string ());
    if Span.enabled () then
      Span.write_file (Filename.concat !bundle_dir "spans.json")
  with Sys_error msg ->
    Logs.err (fun m -> m "Recorder: cannot write post-mortem bundle: %s" msg)

let do_trigger ~reason =
  armed_flag := false;
  let now = !clock () in
  let bundle = build_bundle ~reason now in
  last_bundle_ref := bundle;
  last_trigger_ref :=
    Some { tr_reason = reason; tr_at = now; tr_dir = !bundle_dir };
  incr trigger_count_ref;
  write_bundle bundle;
  Logs.warn (fun m ->
      m "Recorder: post-mortem at t=%dns (%s) -> %s" now reason !bundle_dir)

let trigger ~reason = if !armed_flag then do_trigger ~reason

let stalled_flow now =
  let found = ref None in
  Hashtbl.iter
    (fun key fl ->
      if
        !found = None
        && fl.fl_gen = !generation
        && fl.fl_pending > 0
        && fl.fl_delivered < fl.fl_since
        (* "zero deliveries while senders have unacked data": anything
           delivered anywhere — even a retransmitted duplicate landing in
           a ring nobody polls anymore — since this flow's pending epoch
           began proves the fabric still works; a sender abandoned by a
           finished receiver is a ragged end, not a wedged run *)
        && !last_delivery_global < fl.fl_since
        && now - fl.fl_since >= !deadline_ns
      then found := Some (key, fl))
    flows;
  !found

let tick now =
  if !armed_flag then
    match stalled_flow now with
    | None -> ()
    | Some (key, fl) ->
        do_trigger
          ~reason:
            (Printf.sprintf
               "no progress: flow %s has %d unacked message(s) for %dns \
                with no delivery%s"
               key fl.fl_pending (now - fl.fl_since)
               (if fl.fl_gave_up then " (sender gave up)" else ""))
