(** Virtual-time attribution profiler with collapsed-stack output.

    Layers {!push}/{!pop} named frames around regions that spend virtual
    time, and the sites that actually account that time (CPU charges, NI
    server occupancy) report it with {!charge} at the instant it is
    charged — before the implied sleep — so time spent by other processes
    while a frame's owner sleeps is never mis-attributed to that frame.

    Frames are keyed per simulated host. Each host gets a synthetic root
    frame [host<N>] whose exclusive time is the elapsed virtual time since
    {!start} minus everything attributed beneath it, so the root's
    inclusive time equals elapsed virtual time by construction (idle shows
    up as root-exclusive time rather than being hidden).

    Like the other telemetry registries this is process-global, off by
    default, and free when disabled (one boolean test per call). *)

val start : unit -> unit
(** Enable and clear; the elapsed-time origin is the current virtual time. *)

val stop : unit -> unit
val clear : unit -> unit
val enabled : unit -> bool

val attach_clock : (unit -> int) -> unit
(** Called by [Sim.create] with a cumulative virtual-time clock (monotone
    across simulator instances within one run). *)

val push : ?host:int -> string -> unit
(** Enter a named frame on [host]'s stack. Also forwards to
    {!Selfprof.enter} when the wall-clock self-profiler is enabled (one
    instrumentation site, two attributions). No-op when both profilers
    are disabled. *)

val pop : ?host:int -> unit -> unit
(** Leave the innermost frame (and forward to {!Selfprof.exit_frame}
    when enabled). Popping an empty stack only bumps {!unmatched_pops}
    (never raises). *)

val charge : ?host:int -> ?frames:string list -> int -> unit
(** [charge ~host ~frames ns] attributes [ns] of virtual time to the node
    reached by descending [frames] from the current top of [host]'s stack
    (creating nodes as needed). Call this synchronously where the time is
    charged, before any sleep. *)

val charge_root : ?host:int -> frames:string list -> int -> unit
(** Like {!charge} but always descends from the host root, ignoring the
    current stack — for asynchronous device time (NI servers) that should
    not nest under whatever application frame happens to be open. *)

val elapsed : unit -> int
(** Virtual ns since {!start} (cumulative across simulator instances). *)

val depth : host:int -> int
(** Current stack depth for a host (0 when balanced). *)

val unmatched_pops : unit -> int
val hosts : unit -> int list

val stacks : unit -> (string list * int) list
(** Every stack with its exclusive time, deterministic order. Paths start
    with the [host<N>] root; the root line carries the residual
    (idle/unattributed) time so that per host the sum of all exclusive
    times equals {!elapsed}. *)

val to_folded_string : unit -> string
(** Collapsed-stack ("folded") text: [frame;frame;... <ns>] per line, the
    format flamegraph.pl and speedscope ingest. *)

val write_folded : string -> unit
