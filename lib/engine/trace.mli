(** Virtual-time structured tracing.

    A process-global tracer that stamps events with the simulator's
    virtual-nanosecond clock and buffers them in a bounded ring (oldest
    events are overwritten). Disabled by default; when disabled, emitting
    costs a single boolean read, so instrumentation can stay in the hot
    paths — guard any argument construction behind {!enabled}.

    The retained buffer exports as Chrome [trace_event] JSON, so a run opens
    directly in Perfetto / chrome://tracing. *)

type category =
  | Cell  (** ATM cells on links and through the switch *)
  | Desc  (** NI descriptor processing: doorbells, DMA, injection *)
  | Mux  (** U-Net mux/demux deliveries and drops *)
  | Tcp  (** TCP retransmission and congestion events *)
  | Am  (** Active Messages go-back-N events *)
  | Cpu  (** host CPU time charged, by layer (the paper's Table 1) *)

val category_name : category -> string

type arg = Int of int | Float of float | Str of string

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Complete of int  (** a whole span with its duration in virtual ns *)
  | Flow_start of int  (** flow arrow start; payload is the flow id *)
  | Flow_step of int
  | Flow_end of int

type event = {
  ts : int;  (** virtual ns *)
  cat : category;
  ph : phase;
  name : string;
  pid : int;  (** simulator generation (one per [Sim.create]) *)
  tid : int;  (** host id where the emitter knows it; 0 otherwise *)
  args : (string * arg) list;
}

type sink = event -> unit

val enabled : unit -> bool

val granularity : unit -> Granularity.t
val set_granularity : Granularity.t -> unit
(** [Per_train] (the default) keeps the cell-train fast path engaged:
    plan commits synthesize one {!type-slice} per coarse phase of a
    committed train (uplink serialization, switch transit, downlink
    serialization) instead of per-cell events. [Per_cell] pins the
    slow path and restores full per-cell event detail. *)

val train_slices_wanted : unit -> bool
(** Tracing is on and granularity is [Per_train] — plan commits should
    synthesize slices. *)

type slice
(** A mutable train-granular span in its own bounded ring. Mutable
    because truncation listeners patch committed slices in place when a
    fault cuts a train short. Merged into {!events} by timestamp. *)

val train_slice :
  ?tid:int ->
  ?args:(string * arg) list ->
  category ->
  ts:int ->
  dur:int ->
  string ->
  slice
(** Record a synthesized span covering [ts, ts+dur) (virtual ns, possibly
    in the future) and return its handle for later patching. *)

val set_slice : slice -> ts:int -> dur:int -> unit
(** Re-time a slice after train truncation shrank its train. *)

val drop_slice : slice -> unit
(** Remove a slice from the output (its train was cut entirely). *)

val start : ?capacity:int -> unit -> unit
(** Enable tracing into a fresh ring of [capacity] events (default 65536). *)

val stop : unit -> unit
(** Disable tracing; the buffered events remain readable. *)

val clear : unit -> unit
(** Drop all buffered events and sinks (tracing stays in its current
    enabled/disabled state). *)

val add_sink : sink -> unit
(** Sinks observe every event as it is emitted, before ring buffering (and
    therefore see events the bounded ring later overwrites). *)

val attach_clock : (unit -> int) -> unit
(** Called by [Sim.create]: the new simulator becomes the timestamp source
    and subsequent events carry a fresh [pid]. *)

val instant : ?tid:int -> ?args:(string * arg) list -> category -> string -> unit
val span_begin : ?tid:int -> ?args:(string * arg) list -> category -> string -> unit
val span_end : ?tid:int -> ?args:(string * arg) list -> category -> string -> unit

val complete :
  ?tid:int -> ?args:(string * arg) list -> dur:int -> category -> string -> unit
(** A span of [dur] virtual ns starting now, as one event. *)

val flow_start :
  ?tid:int -> ?args:(string * arg) list -> id:int -> category -> string -> unit
(** Flow events draw arrows between slices in Perfetto; all points of a
    flow share [id] (and should share a name). Used by {!Span} to link
    the send and receive sides of one message. *)

val flow_step :
  ?tid:int -> ?args:(string * arg) list -> id:int -> category -> string -> unit

val flow_end :
  ?tid:int -> ?args:(string * arg) list -> id:int -> category -> string -> unit

val events : unit -> event list
(** The retained events, oldest first. *)

val total_events : unit -> int
(** Events emitted since {!start}, including overwritten ones. *)

val dropped_events : unit -> int
(** Events lost to ring overwrite. Also exposed as the
    [trace_events_dropped_total] counter in {!Metrics} (registered on
    first drop), so silent loss shows up in metric dumps. *)

val to_chrome_json : unit -> string
(** The retained events as a Chrome [trace_event] JSON array: objects with
    [name]/[cat]/[ph]/[ts]/[pid]/[tid] (timestamps in microseconds). *)

val write_chrome_file : string -> unit
