module Mailbox = struct
  (* A waiting receiver is represented by a slot: the sender deposits the
     value and fires the resume thunk. Timeouts kill the slot so a later send
     skips it. *)
  type 'a waiter = {
    mutable cell : 'a option;
    mutable alive : bool;
    mutable resume : unit -> unit;
  }

  type 'a t = {
    sim : Sim.t;
    items : 'a Queue.t;
    waiters : 'a waiter Queue.t;
  }

  let create sim = { sim; items = Queue.create (); waiters = Queue.create () }
  let length t = Queue.length t.items

  let rec send t v =
    match Queue.take_opt t.waiters with
    | None -> Queue.add v t.items
    | Some w ->
        if w.alive then begin
          w.cell <- Some v;
          w.alive <- false;
          w.resume ()
        end
        else send t v

  let try_recv t = Queue.take_opt t.items

  let recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
        let w = { cell = None; alive = true; resume = (fun () -> ()) } in
        Proc.suspend (fun resume ->
            w.resume <- resume;
            Queue.add w t.waiters);
        (match w.cell with
        | Some v -> v
        | None -> assert false)

  let recv_timeout t ~timeout =
    match Queue.take_opt t.items with
    | Some v -> Some v
    | None ->
        let w = { cell = None; alive = true; resume = (fun () -> ()) } in
        Proc.suspend (fun resume ->
            w.resume <- resume;
            Queue.add w t.waiters;
            Sim.schedule_drop ~label:"sync.timeout" t.sim ~delay:timeout
              (fun () ->
                if w.alive then begin
                  w.alive <- false;
                  resume ()
                end));
        w.cell
end

module Semaphore = struct
  type t = {
    sim : Sim.t;
    mutable count : int;
    waiters : (unit -> unit) Queue.t;
  }

  let create sim count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { sim; count; waiters = Queue.create () }

  let available t = t.count

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Proc.suspend (fun resume -> Queue.add resume t.waiters)

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let release t =
    match Queue.take_opt t.waiters with
    | Some resume ->
        Sim.schedule_drop ~label:"sync.release" t.sim ~delay:0 resume
    | None -> t.count <- t.count + 1
end

module Condition = struct
  type t = { sim : Sim.t; mutable waiting : (unit -> unit) list }

  let create sim = { sim; waiting = [] }
  let waiters t = List.length t.waiting

  let wait t = Proc.suspend (fun resume -> t.waiting <- resume :: t.waiting)

  let broadcast t =
    let ws = List.rev t.waiting in
    t.waiting <- [];
    List.iter
      (fun resume ->
        Sim.schedule_drop ~label:"sync.broadcast" t.sim ~delay:0 resume)
      ws

  let rec wait_for t pred =
    if not (pred ()) then begin
      wait t;
      wait_for t pred
    end
end

module Server = struct
  type job = { cost : Sim.time; k : unit -> unit }

  (* Batches are the train fast path (DESIGN.md §14): a precomputed schedule
     standing in for a run of per-cell jobs. A [chain] is the tx side — one
     fixed-cost setup window followed by one per-cell unit job per cell, each
     ending at a precomputed link-acceptance instant. A [paced] batch is the
     rx side — per-cell jobs whose start times chain off precomputed cell
     arrival instants. Any plain [submit] while a batch is active dissolves
     it ("splits") back into real jobs/events with byte-identical
     accounting, so a batch is only ever an optimization, never a behavior
     change. *)

  type chain_phase =
    | Chain_first of Sim.time  (* setup job in flight; completes at [t] *)
    | Chain_unit of Sim.time  (* per-cell unit job in flight; completes at [t] *)
    | Chain_gap of Sim.time
      (* between refused attempts; first attempt for the pending cell was at
         [t], retries follow at the caller's retry step *)

  type chain = {
    c_first_end : Sim.time;
    c_unit : Sim.time;
    c_accepts : Sim.time array;  (* acceptance instant of cell i *)
    c_done : unit -> unit;
    c_split : accepted:int -> phase:chain_phase -> unit;
    mutable c_ev : Sim.handle option;
  }

  type paced = {
    p_cost : Sim.time;
    p_arrivals : Sim.time array;
    p_starts : Sim.time array;  (* start.(i) = max(arrival.(i), end.(i-1)) *)
    p_actions : (unit -> unit) array;
    mutable p_n : int;  (* live prefix; shrinks if the train truncates *)
    mutable p_ev : Sim.handle option;
    mutable p_split_evs : (int * Sim.handle) list;
      (* arrival events re-armed by a split, by cell index: a truncation
         arriving after the split must still cancel the cut cells' events
         (their cells are re-delivered for real by the per-cell path) *)
  }

  type batch = Chain of chain | Paced of paced

  type t = {
    sim : Sim.t;
    jobs : job Queue.t;
    mutable busy : bool;
    mutable busy_until : Sim.time;  (* meaningful only while [busy] *)
    mutable busy_time : Sim.time;
    mutable batch : batch option;
  }

  let create sim =
    {
      sim;
      jobs = Queue.create ();
      busy = false;
      busy_until = 0;
      busy_time = 0;
      batch = None;
    }

  let busy t = t.busy
  let queue_length t = Queue.length t.jobs
  let busy_time t = t.busy_time
  let idle t = (not t.busy) && Queue.is_empty t.jobs && t.batch = None

  let rec start t job =
    t.busy <- true;
    t.busy_time <- t.busy_time + job.cost;
    t.busy_until <- Sim.now t.sim + job.cost;
    Sim.schedule_drop ~label:"sync.job_done" t.sim ~delay:job.cost (fun () ->
        job.k ();
        match Queue.take_opt t.jobs with
        | Some next -> start t next
        | None -> t.busy <- false)

  (* Re-arm a real in-flight job completing at [until] (its cost was already
     charged by the batch that is being split). *)
  let resume_inflight t ~until ~k =
    t.busy <- true;
    t.busy_until <- until;
    Sim.schedule_drop ~label:"sync.job_done" t.sim
      ~delay:(until - Sim.now t.sim) (fun () ->
        k ();
        match Queue.take_opt t.jobs with
        | Some next -> start t next
        | None -> t.busy <- false)

  let finish_chain t c () =
    c.c_ev <- None;
    t.batch <- None;
    t.busy <- false;
    t.busy_until <- Sim.now t.sim;
    c.c_done ()

  (* Paced completion runs every deferred per-cell action in arrival order
     with the server held busy, exactly as the per-cell path runs each k
     inside its job_done event: a submit from the final action (the EOP
     handoff) therefore enqueues and is popped right after, preserving FIFO
     order against any job the actions enqueue. *)
  let finish_paced t p () =
    p.p_ev <- None;
    t.batch <- None;
    t.busy <- true;
    t.busy_until <- Sim.now t.sim;
    for i = 0 to p.p_n - 1 do
      p.p_actions.(i) ()
    done;
    match Queue.take_opt t.jobs with
    | Some next -> start t next
    | None -> t.busy <- false

  (* Split a tx chain at the current instant: count cells whose acceptance is
     strictly in the past (an acceptance at exactly [now] has not fired yet —
     the interferer's event won the tie — and is re-performed by the re-armed
     per-cell continuation), refund the units the per-cell path will charge
     again, and hand the phase to the NI's re-entry callback. *)
  let split_chain t c =
    let now = Sim.now t.sim in
    (match c.c_ev with
    | Some h ->
        Sim.cancel h;
        c.c_ev <- None
    | None -> ());
    t.batch <- None;
    t.busy <- false;
    let n = Array.length c.c_accepts in
    let m = ref 0 in
    while !m < n && c.c_accepts.(!m) < now do
      incr m
    done;
    let m = !m in
    let phase, consumed =
      if now <= c.c_first_end then (Chain_first c.c_first_end, 0)
      else begin
        (* the completion event at c_accepts.(n-1) fires before any event at
           a strictly later time, so an active chain always has a pending
           cell *)
        assert (m < n);
        let q = if m = 0 then c.c_first_end else c.c_accepts.(m - 1) in
        if now <= q + c.c_unit then (Chain_unit (q + c.c_unit), m + 1)
        else (Chain_gap (q + c.c_unit), m + 1)
      end
    in
    t.busy_time <- t.busy_time - ((n - consumed) * c.c_unit);
    c.c_split ~accepted:m ~phase

  (* Split a paced rx batch: the completed prefix's actions run now (they are
     pure pushes — only the final action may submit, and it can never be in
     the completed prefix because the batch-completion event wins same-time
     ties); at most one unit is genuinely in flight; arrived-but-unstarted
     units enqueue as real jobs ahead of the interferer; future arrivals
     become real arrival events that re-submit plainly. If the server is
     still busy with a plain job (its completion at [now] lost the tie to
     the interferer), no unit has started yet and everything queues. *)
  let rec split_paced t p =
    let now = Sim.now t.sim in
    (match p.p_ev with
    | Some h ->
        Sim.cancel h;
        p.p_ev <- None
    | None -> ());
    t.batch <- None;
    let n = p.p_n in
    let consumed = ref 0 in
    let i = ref 0 in
    if not t.busy then begin
      while !i < n && p.p_starts.(!i) + p.p_cost < now do
        p.p_actions.(!i) ();
        incr consumed;
        incr i
      done;
      if !i < n && p.p_starts.(!i) <= now then begin
        let e = p.p_starts.(!i) + p.p_cost in
        let k = p.p_actions.(!i) in
        incr consumed;
        incr i;
        resume_inflight t ~until:e ~k
      end
    end;
    while !i < n do
      let k = p.p_actions.(!i) and arr = p.p_arrivals.(!i) in
      if arr <= now then Queue.add { cost = p.p_cost; k } t.jobs
      else begin
        let h =
          Sim.schedule ~label:"sync.paced_arrival" t.sim ~delay:(arr - now)
            (fun () -> submit t ~cost:p.p_cost k)
        in
        p.p_split_evs <- (!i, h) :: p.p_split_evs
      end;
      incr i
    done;
    t.busy_time <- t.busy_time - ((n - !consumed) * p.p_cost)

  and interfere t =
    match t.batch with
    | None -> ()
    | Some (Chain c) -> split_chain t c
    | Some (Paced p) -> split_paced t p

  and submit t ~cost k =
    if cost < 0 then invalid_arg "Server.submit: negative cost";
    interfere t;
    let job = { cost; k } in
    if t.busy then Queue.add job t.jobs else start t job

  let begin_chain t ?done_sched ~first_end ~unit_cost ~accepts ~on_done
      ~on_split () =
    if not (idle t) then invalid_arg "Server.begin_chain: server not idle";
    let n = Array.length accepts in
    if n = 0 then invalid_arg "Server.begin_chain: empty train";
    let c =
      {
        c_first_end = first_end;
        c_unit = unit_cost;
        c_accepts = accepts;
        c_done = on_done;
        c_split = on_split;
        c_ev = None;
      }
    in
    let now = Sim.now t.sim in
    t.batch <- Some (Chain c);
    t.busy_time <- t.busy_time + (first_end - now) + (n * unit_cost);
    let last = accepts.(n - 1) in
    (* Same-instant ties against the completion are resolved by event
       schedule order, so the completion event must be *created* when the
       per-cell path would have created the final accepting event
       ([done_sched]), not at commit time — a trampoline event at
       [done_sched] gives it the right heap sequence. *)
    match done_sched with
    | Some s when s > now && s < last ->
        c.c_ev <-
          Some
            (Sim.schedule ~label:"sync.chain_done" t.sim ~delay:(s - now)
               (fun () ->
                 c.c_ev <-
                   Some
                     (Sim.schedule ~label:"sync.chain_done" t.sim
                        ~delay:(last - s) (finish_chain t c))))
    | _ ->
        c.c_ev <-
          Some
            (Sim.schedule ~label:"sync.chain_done" t.sim ~delay:(last - now)
               (finish_chain t c))

  let submit_paced t ~cost ~arrivals ~actions =
    if cost <= 0 then invalid_arg "Server.submit_paced: non-positive cost";
    if t.batch <> None || not (Queue.is_empty t.jobs) then None
    else begin
      let n = Array.length arrivals in
      if n = 0 || Array.length actions <> n then
        invalid_arg "Server.submit_paced: bad arrays";
      let starts = Array.make n 0 in
      let prev = ref (if t.busy then t.busy_until else 0) in
      for i = 0 to n - 1 do
        let s = max arrivals.(i) !prev in
        starts.(i) <- s;
        prev := s + cost
      done;
      t.busy_time <- t.busy_time + (n * cost);
      let p =
        {
          p_cost = cost;
          p_arrivals = arrivals;
          p_starts = starts;
          p_actions = actions;
          p_n = n;
          p_ev = None;
          p_split_evs = [];
        }
      in
      let now = Sim.now t.sim in
      t.batch <- Some (Paced p);
      p.p_ev <-
        Some
          (Sim.schedule ~label:"sync.batch_done" t.sim ~delay:(!prev - now)
             (finish_paced t p));
      Some p
    end

  (* The train this batch models was truncated upstream: units past [keep]
     will never arrive. All of them are strictly in the future (a unit only
     arrives after its cell was accepted upstream), so this just shrinks the
     live prefix and re-arms completion at the new last unit's end. *)
  let truncate_paced t p ~keep =
    (* cut cells re-armed by an earlier split will never arrive — the
       per-cell path re-delivers them for real (their events cannot have
       fired: a truncation never cuts below the delivered prefix) *)
    p.p_split_evs <-
      List.filter
        (fun (i, h) ->
          if i >= keep then begin
            Sim.cancel h;
            false
          end
          else true)
        p.p_split_evs;
    match t.batch with
    | Some (Paced q) when q == p ->
        if keep < p.p_n then begin
          let now = Sim.now t.sim in
          t.busy_time <- t.busy_time - ((p.p_n - keep) * p.p_cost);
          p.p_n <- keep;
          (match p.p_ev with
          | Some h ->
              Sim.cancel h;
              p.p_ev <- None
          | None -> ());
          if keep = 0 then t.batch <- None
          else
            let e = p.p_starts.(keep - 1) + p.p_cost in
            p.p_ev <-
              Some
                (Sim.schedule ~label:"sync.batch_done" t.sim
                   ~delay:(max 0 (e - now))
                   (finish_paced t p))
        end
    | _ -> ()
end
