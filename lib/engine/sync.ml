module Mailbox = struct
  (* A waiting receiver is represented by a slot: the sender deposits the
     value and fires the resume thunk. Timeouts kill the slot so a later send
     skips it. *)
  type 'a waiter = {
    mutable cell : 'a option;
    mutable alive : bool;
    mutable resume : unit -> unit;
  }

  type 'a t = {
    sim : Sim.t;
    items : 'a Queue.t;
    waiters : 'a waiter Queue.t;
  }

  let create sim = { sim; items = Queue.create (); waiters = Queue.create () }
  let length t = Queue.length t.items

  let rec send t v =
    match Queue.take_opt t.waiters with
    | None -> Queue.add v t.items
    | Some w ->
        if w.alive then begin
          w.cell <- Some v;
          w.alive <- false;
          w.resume ()
        end
        else send t v

  let try_recv t = Queue.take_opt t.items

  let recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
        let w = { cell = None; alive = true; resume = (fun () -> ()) } in
        Proc.suspend (fun resume ->
            w.resume <- resume;
            Queue.add w t.waiters);
        (match w.cell with
        | Some v -> v
        | None -> assert false)

  let recv_timeout t ~timeout =
    match Queue.take_opt t.items with
    | Some v -> Some v
    | None ->
        let w = { cell = None; alive = true; resume = (fun () -> ()) } in
        Proc.suspend (fun resume ->
            w.resume <- resume;
            Queue.add w t.waiters;
            ignore
              (Sim.schedule ~label:"sync.timeout" t.sim ~delay:timeout (fun () ->
                   if w.alive then begin
                     w.alive <- false;
                     resume ()
                   end)));
        w.cell
end

module Semaphore = struct
  type t = {
    sim : Sim.t;
    mutable count : int;
    waiters : (unit -> unit) Queue.t;
  }

  let create sim count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { sim; count; waiters = Queue.create () }

  let available t = t.count

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Proc.suspend (fun resume -> Queue.add resume t.waiters)

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let release t =
    match Queue.take_opt t.waiters with
    | Some resume ->
        ignore (Sim.schedule ~label:"sync.release" t.sim ~delay:0 resume)
    | None -> t.count <- t.count + 1
end

module Condition = struct
  type t = { sim : Sim.t; mutable waiting : (unit -> unit) list }

  let create sim = { sim; waiting = [] }
  let waiters t = List.length t.waiting

  let wait t = Proc.suspend (fun resume -> t.waiting <- resume :: t.waiting)

  let broadcast t =
    let ws = List.rev t.waiting in
    t.waiting <- [];
    List.iter
      (fun resume ->
        ignore (Sim.schedule ~label:"sync.broadcast" t.sim ~delay:0 resume))
      ws

  let rec wait_for t pred =
    if not (pred ()) then begin
      wait t;
      wait_for t pred
    end
end

module Server = struct
  type job = { cost : Sim.time; k : unit -> unit }

  type t = {
    sim : Sim.t;
    jobs : job Queue.t;
    mutable busy : bool;
    mutable busy_time : Sim.time;
  }

  let create sim = { sim; jobs = Queue.create (); busy = false; busy_time = 0 }
  let busy t = t.busy
  let queue_length t = Queue.length t.jobs
  let busy_time t = t.busy_time

  let rec start t job =
    t.busy <- true;
    t.busy_time <- t.busy_time + job.cost;
    ignore
      (Sim.schedule ~label:"sync.job_done" t.sim ~delay:job.cost (fun () ->
           job.k ();
           match Queue.take_opt t.jobs with
           | Some next -> start t next
           | None -> t.busy <- false))

  let submit t ~cost k =
    if cost < 0 then invalid_arg "Server.submit: negative cost";
    let job = { cost; k } in
    if t.busy then Queue.add job t.jobs else start t job
end
