(** Global gate for the cell-train fast path.

    [active ()] is true only when no per-cell observer is attached: tracing,
    pcapng capture, spans, the timeseries sampler, the virtual-time and
    wall-clock profilers, and the flight recorder all pin the simulation to
    the per-cell slow path (each costs one boolean read here). Per-site
    conditions — fault injectors, legacy loss, bounded queues — are checked
    at the individual link/NI instead, so expansion stays local to the
    affected hop. *)

val active : unit -> bool

val force_per_cell : bool -> unit
(** [force_per_cell true] disables the fast path globally (the --per-cell
    flag), used by the differential tests and benches to compare both
    modes. *)
