(** Global gate for the cell-train fast path.

    [active ()] is true when no enabled observer demands per-cell
    granularity. Trace, Span and Timeseries default to [Per_train]
    (their train-granular backends synthesize output from committed plan
    records, so they do not pin); pcapng defaults to [Per_cell]; the
    profilers and the flight recorder measure event-grain behavior
    itself and always pin. Per-site conditions — fault injectors, legacy
    loss, bounded queues — are checked at the individual link/NI
    instead, so expansion stays local to the affected hop.

    When observers do pin, each culprit is named in a
    [trainmode_pinned{observer}] gauge and a one-line stderr warning
    (once per process) — never for {!force_per_cell}, which is an
    explicit request. *)

val active : unit -> bool

val pinned : unit -> string list
(** The observers currently pinning the per-cell path (empty when the
    fast path is available). [force_per_cell] is not listed. *)

val force_per_cell : bool -> unit
(** [force_per_cell true] disables the fast path globally (the --per-cell
    flag), used by the differential tests and benches to compare both
    modes. *)
