(* Global gate for the cell-train fast path (DESIGN.md §14).

   Trains coalesce per-cell events into per-PDU analytic schedules, which is
   only legal when nothing can observe the simulation *between* cells: every
   per-cell observer (tracing, captures, spans, the timeseries sampler, both
   profilers, the flight recorder) pins the whole run to the per-cell slow
   path so its output stays byte-identical with and without this refactor.
   Fault injectors and legacy loss are per-site and are checked at each
   link/NI, not here, so a --fault at one attachment point expands only the
   affected hop. *)

let forced = ref false
let force_per_cell v = forced := v

let active () =
  (not !forced)
  && (not (Trace.enabled ()))
  && (not (Pcapng.enabled ()))
  && (not (Span.enabled ()))
  && (not (Timeseries.enabled ()))
  && (not (Profile.enabled ()))
  && (not (Selfprof.enabled ()))
  && not (Recorder.armed ())
