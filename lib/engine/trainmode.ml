(* Global gate for the cell-train fast path (DESIGN.md §14, §15).

   Trains coalesce per-cell events into per-PDU analytic schedules, which is
   only legal when nothing observes the simulation *between* cells. Since
   PR 8 that is a per-observer property, not an all-or-nothing one: Trace,
   Span and Timeseries default to [Per_train] (they synthesize their output
   from committed plan records) and only pin the slow path when explicitly
   set to [Per_cell]; pcapng capture defaults to [Per_cell] (a full capture
   needs every cell) unless PDU sampling flips it; the profilers and the
   flight recorder measure event-grain behavior itself and always pin.
   Fault injectors and legacy loss are per-site and are checked at each
   link/NI, not here, so a --fault at one attachment point expands only the
   affected hop. *)

let forced = ref false
let force_per_cell v = forced := v

let pinned () =
  let per_cell g = g = Granularity.Per_cell in
  List.filter_map
    (fun (name, pins) -> if pins () then Some name else None)
    [
      ("trace", fun () -> Trace.enabled () && per_cell (Trace.granularity ()));
      ("pcap", fun () -> Pcapng.enabled () && per_cell (Pcapng.granularity ()));
      ("span", fun () -> Span.enabled () && per_cell (Span.granularity ()));
      ( "timeseries",
        fun () ->
          Timeseries.enabled () && per_cell (Timeseries.granularity ()) );
      ("profile", Profile.enabled);
      ("selfprof", Selfprof.enabled);
      ("recorder", Recorder.armed);
    ]

(* Satellite 1: pinning is easy to cause by accident (attach one eager
   observer, silently lose the 14x fast path), so name the culprits once —
   a [trainmode_pinned{observer}] gauge plus one stderr line. Never for
   the --per-cell flag: that pin is explicit, and the differential tests
   compare dumps across the flag byte-for-byte. *)
let warned = ref false
let pin_gauges : (string, Metrics.Gauge.t) Hashtbl.t = Hashtbl.create 7

let note_pinned names =
  List.iter
    (fun name ->
      let g =
        match Hashtbl.find_opt pin_gauges name with
        | Some g -> g
        | None ->
            let g =
              Metrics.gauge
                ~help:"1 when this observer pins the per-cell slow path"
                "trainmode_pinned"
                [ ("observer", name) ]
            in
            Hashtbl.replace pin_gauges name g;
            g
      in
      Metrics.Gauge.set g 1.)
    names;
  if not !warned then begin
    warned := true;
    Logs.warn (fun m ->
        m "cell-train fast path disabled by per-cell observer%s: %s"
          (if List.length names > 1 then "s" else "")
          (String.concat ", " names))
  end

let active () =
  if !forced then false
  else
    match pinned () with
    | [] -> true
    | names ->
        note_pinned names;
        false
