(* Wall-clock self-observability: profile the simulator with the same
   rigor the simulator profiles the network.

   [Profile] attributes *virtual* time; this module attributes *wall*
   time and allocation, so every virtual-time flame has a wall-time twin
   and "where do the microseconds go" can be asked of the engine itself
   (the paper's Table 2 method, turned inward).

   Attribution model. All charges are deltas of a monotonic clock and of
   [Gc.counters], taken at every *transition* — frame enter/exit (fed by
   [Profile.push]/[Profile.pop], so one instrumentation site feeds both
   profilers) and event dispatch begin/end (fed by [Sim.step]). Each
   delta is charged exactly once, to the node that was on top of the
   stack when the interval ran, so wall time and allocation words are
   never double-counted across nested frames and the root's inclusive
   totals equal the measured elapsed totals by construction.

   The tree has a single root, [engine]. Its depth-1 children are event
   kinds — the static [~label] given to [Sim.schedule] at the scheduling
   site ([ev:<label>], [ev:event] for unlabeled events) — and frames
   entered outside any event (driver code between runs). Frames pushed
   while an event executes nest under that event's kind node. Time
   between events (heap pops, tombstone skips, the timeseries sampler)
   is the root's exclusive time: the event loop's own overhead, visible
   rather than smeared over whichever frame fired last.

   Frames that stay open across a sleep are charged only while their
   code actually executes: an event window starts with an empty stack
   and force-rewinds whatever is still open when the thunk returns, so a
   sleeping process's frame cannot absorb the wall time of the processes
   that run while it sleeps. The matching pop, arriving in a later
   event, lands on an empty stack and only bumps a counter.

   The module also owns the bounded histograms behind the event-queue
   introspection ([Sim] reports per-pop heap costs and same-timestamp
   batch sizes here when enabled) — the data needed to choose between a
   calendar queue and a pairing heap.

   Like the other telemetry registries this is process-global, off by
   default, and costs one boolean test per call when disabled, so runs
   with it off are byte-identical to runs without it. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type node = {
  sp_name : string;
  sp_children : (string, node) Hashtbl.t;
  mutable sp_order : string list; (* creation order, reversed *)
  mutable sp_wall : int; (* exclusive wall ns *)
  mutable sp_minor : float; (* exclusive minor words *)
  mutable sp_promoted : float;
  mutable sp_major : float;
}

let mk_node name =
  {
    sp_name = name;
    sp_children = Hashtbl.create 4;
    sp_order = [];
    sp_wall = 0;
    sp_minor = 0.;
    sp_promoted = 0.;
    sp_major = 0.;
  }

(* per-event-kind summary, accumulated at event end *)
type kind_summary = {
  mutable k_events : int;
  mutable k_wall_ns : int;
  mutable k_minor_words : float;
  mutable k_major_words : float;
}

let enabled_flag = ref false
let root = ref (mk_node "engine")
let stack : node list ref = ref []
let saved : (node list * int) option ref = ref None (* stack, event depth *)
let event_depth = ref 0
let cur_kind : kind_summary option ref = ref None
let ev_wall0 = ref 0
let ev_minor0 = ref 0.
let ev_major0 = ref 0.
let t_start = ref 0
let last_wall = ref 0
let last_minor = ref 0.
let last_promoted = ref 0.
let last_major = ref 0.
let stopped_elapsed : int option ref = ref None
let underflows = ref 0
let dangling_frames = ref 0
let kinds : (string, kind_summary) Hashtbl.t = Hashtbl.create 16
let kind_order : string list ref = ref []

(* bounded histograms for the queue introspection: index = value clamped
   to the last bucket, so memory is constant no matter how hot the run *)
let hist_buckets = 64
let pop_cost = Array.make hist_buckets 0
let pop_cost_sum = ref 0
let pop_cost_count = ref 0
let batch_size = Array.make hist_buckets 0
let batch_size_sum = ref 0
let batch_size_count = ref 0

let enabled () = !enabled_flag

let child parent name =
  match Hashtbl.find_opt parent.sp_children name with
  | Some n -> n
  | None ->
      let n = mk_node name in
      Hashtbl.replace parent.sp_children name n;
      parent.sp_order <- name :: parent.sp_order;
      n

let top () = match !stack with n :: _ -> n | [] -> !root

(* Charge the interval since the previous transition to the frame that
   was executing through it, then restamp. Every wall ns and every
   allocated word lands in exactly one node. *)
let stamp () =
  let now = now_ns () in
  let minor, promoted, major = Gc.counters () in
  let n = top () in
  n.sp_wall <- n.sp_wall + (now - !last_wall);
  n.sp_minor <- n.sp_minor +. (minor -. !last_minor);
  n.sp_promoted <- n.sp_promoted +. (promoted -. !last_promoted);
  n.sp_major <- n.sp_major +. (major -. !last_major);
  last_wall := now;
  last_minor := minor;
  last_promoted := promoted;
  last_major := major

let clear () =
  root := mk_node "engine";
  stack := [];
  saved := None;
  event_depth := 0;
  cur_kind := None;
  underflows := 0;
  dangling_frames := 0;
  Hashtbl.reset kinds;
  kind_order := [];
  Array.fill pop_cost 0 hist_buckets 0;
  pop_cost_sum := 0;
  pop_cost_count := 0;
  Array.fill batch_size 0 hist_buckets 0;
  batch_size_sum := 0;
  batch_size_count := 0;
  stopped_elapsed := None;
  let minor, promoted, major = Gc.counters () in
  last_wall := now_ns ();
  last_minor := minor;
  last_promoted := promoted;
  last_major := major;
  t_start := !last_wall

let start () =
  clear ();
  enabled_flag := true

let elapsed_wall_ns () =
  match !stopped_elapsed with
  | Some e -> e
  | None -> if !enabled_flag then now_ns () - !t_start else 0

let rec inclusive_wall n =
  Hashtbl.fold (fun _ c acc -> acc + inclusive_wall c) n.sp_children n.sp_wall

let alloc_words n = n.sp_minor +. n.sp_major -. n.sp_promoted

let rec inclusive_alloc n =
  Hashtbl.fold
    (fun _ c acc -> acc +. inclusive_alloc c)
    n.sp_children (alloc_words n)

(* At stop, fold per-layer totals into the metrics registry so an
   ordinary --metrics dump carries the wall and allocation story. The
   root's own exclusive share is the event loop, reported as
   layer="engine". *)
let fold_metrics () =
  let emit layer wall alloc =
    Metrics.Counter.add
      (Metrics.counter ~help:"wall-clock ns attributed by the self-profiler"
         "selfprof_wall_ns_total"
         [ ("layer", layer) ])
      wall;
    Metrics.Counter.add
      (Metrics.counter
         ~help:"GC words allocated, attributed by the self-profiler"
         "selfprof_alloc_words_total"
         [ ("layer", layer) ])
      (int_of_float alloc)
  in
  emit !root.sp_name !root.sp_wall (alloc_words !root);
  List.iter
    (fun name ->
      let c = Hashtbl.find !root.sp_children name in
      emit name (inclusive_wall c) (inclusive_alloc c))
    (List.rev !root.sp_order)

let stop () =
  if !enabled_flag then begin
    stamp ();
    stopped_elapsed := Some (!last_wall - !t_start);
    enabled_flag := false;
    fold_metrics ()
  end

(* --- transitions ------------------------------------------------------ *)

let enter name =
  if !enabled_flag then begin
    stamp ();
    stack := child (top ()) name :: !stack
  end

let exit_frame () =
  if !enabled_flag then begin
    stamp ();
    match !stack with _ :: rest -> stack := rest | [] -> incr underflows
  end

let kind_summary label =
  match Hashtbl.find_opt kinds label with
  | Some k -> k
  | None ->
      let k =
        { k_events = 0; k_wall_ns = 0; k_minor_words = 0.; k_major_words = 0. }
      in
      Hashtbl.replace kinds label k;
      kind_order := label :: !kind_order;
      k

let event_begin ~label =
  if !enabled_flag then begin
    incr event_depth;
    if !event_depth = 1 then begin
      stamp ();
      let label = if label = "" then "event" else label in
      saved := Some (!stack, !event_depth);
      stack := [ child !root ("ev:" ^ label) ];
      cur_kind := Some (kind_summary label);
      ev_wall0 := !last_wall;
      ev_minor0 := !last_minor;
      ev_major0 := !last_major
    end
  end

let event_end () =
  if !enabled_flag && !event_depth > 0 then begin
    if !event_depth = 1 then begin
      stamp ();
      (* frames left open by a process that went to sleep: rewind them;
         their wall time stays where it was actually spent *)
      (match !stack with
      | [ _ ] | [] -> ()
      | l -> dangling_frames := !dangling_frames + List.length l - 1);
      (match !saved with
      | Some (st, _) -> stack := st
      | None -> stack := []);
      saved := None;
      (match !cur_kind with
      | Some k ->
          k.k_events <- k.k_events + 1;
          k.k_wall_ns <- k.k_wall_ns + (!last_wall - !ev_wall0);
          k.k_minor_words <- k.k_minor_words +. (!last_minor -. !ev_minor0);
          k.k_major_words <- k.k_major_words +. (!last_major -. !ev_major0)
      | None -> ());
      cur_kind := None
    end;
    decr event_depth
  end

let unmatched_exits () = !underflows
let dangling () = !dangling_frames

(* --- queue histograms (reported by Sim when enabled) ------------------ *)

let observe_pop_cost c =
  let c = max 0 c in
  pop_cost.(min c (hist_buckets - 1)) <- pop_cost.(min c (hist_buckets - 1)) + 1;
  pop_cost_sum := !pop_cost_sum + c;
  incr pop_cost_count

let observe_batch n =
  if n > 0 then begin
    batch_size.(min n (hist_buckets - 1)) <-
      batch_size.(min n (hist_buckets - 1)) + 1;
    batch_size_sum := !batch_size_sum + n;
    incr batch_size_count
  end

let buckets_of a =
  let out = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if a.(i) > 0 then out := (i, a.(i)) :: !out
  done;
  !out

let pop_cost_hist () = buckets_of pop_cost

let pop_cost_mean () =
  if !pop_cost_count = 0 then 0.
  else float_of_int !pop_cost_sum /. float_of_int !pop_cost_count

let batch_size_hist () = buckets_of batch_size

let batch_size_mean () =
  if !batch_size_count = 0 then 0.
  else float_of_int !batch_size_sum /. float_of_int !batch_size_count

(* --- dumps ------------------------------------------------------------ *)

(* Stacks in deterministic order (children in creation order). Any wall
   time not yet charged (only possible while still enabled) is shown as
   root-exclusive, so the root's inclusive time tracks elapsed wall time
   whether or not [stop] has run. *)
let stacks_by value_of root_extra =
  let acc = ref [] in
  let rec walk path n extra =
    let path = path @ [ n.sp_name ] in
    let self = value_of n + extra in
    if self > 0 || path = [ n.sp_name ] then acc := (path, self) :: !acc;
    List.iter
      (fun name -> walk path (Hashtbl.find n.sp_children name) 0)
      (List.rev n.sp_order)
  in
  walk [] !root root_extra;
  List.rev !acc

let stacks () =
  let residual = max 0 (elapsed_wall_ns () - inclusive_wall !root) in
  stacks_by (fun n -> n.sp_wall) residual

let alloc_stacks () =
  stacks_by (fun n -> int_of_float (alloc_words n)) 0

let to_folded_string () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (path, self) ->
      if self > 0 then begin
        Buffer.add_string b (String.concat ";" path);
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int self);
        Buffer.add_char b '\n'
      end)
    (stacks ());
  Buffer.contents b

let write_folded path =
  let oc = open_out path in
  output_string oc (to_folded_string ());
  close_out oc

let kind_summaries () =
  List.rev_map
    (fun label ->
      let k = Hashtbl.find kinds label in
      (label, k.k_events, k.k_wall_ns, k.k_minor_words +. k.k_major_words))
    !kind_order

let pp_summary ppf () =
  let total_ev = Hashtbl.fold (fun _ k acc -> acc + k.k_events) kinds 0 in
  Format.fprintf ppf
    "self-profile: %d events dispatched over %.3f ms wall@." total_ev
    (float_of_int (elapsed_wall_ns ()) /. 1e6);
  Format.fprintf ppf "  %-24s %10s %12s %12s %14s@." "event kind" "events"
    "us/event" "words/event" "wall total ms";
  List.iter
    (fun (label, events, wall, words) ->
      if events > 0 then
        Format.fprintf ppf "  %-24s %10d %12.3f %12.1f %14.3f@." label events
          (float_of_int wall /. 1e3 /. float_of_int events)
          (words /. float_of_int events)
          (float_of_int wall /. 1e6))
    (kind_summaries ());
  if !pop_cost_count > 0 then
    Format.fprintf ppf
      "  queue: mean pop cost %.2f heap ops, mean same-timestamp batch %.2f@."
      (pop_cost_mean ()) (batch_size_mean ())
