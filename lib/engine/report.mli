(** Single-file HTML report generation.

    Every builder returns an HTML fragment; {!page} assembles fragments
    into one self-contained document — inline CSS, inline SVG sparklines,
    a flamegraph rendered as positioned [<div>]s, no scripts and no
    external references of any kind, so the file renders identically from
    disk or an artifact store. *)

val escape : string -> string
(** HTML-escape text content and attribute values. *)

val section : title:string -> string -> string
(** Wrap a fragment under an [<h2>]. *)

val page : title:string -> string list -> string
(** The complete HTML document from ordered section fragments. *)

val write : path:string -> title:string -> string list -> unit

val sparkline : ?w:int -> ?h:int -> (float * float) list -> string
(** An inline-SVG polyline over (x, y) points, normalized to the box. *)

val downsample : int -> 'a list -> 'a list
(** Evenly stride a list down to at most [target] elements (keeps the
    last element). *)

val checks_table : (string * bool) list -> string
(** PASS/FAIL table for experiment checks. *)

val curves_html : (string * (float * float) list) list -> string
(** Labelled sparklines with point-count/min/max captions (figure
    curves). *)

(** {2 Sections built from the telemetry registries} *)

val breakdown_section : unit -> string
(** Per-phase span attribution (the measured Table 2), from [Span]. *)

val timeseries_section : unit -> string
(** One sparkline per sampled probe series, from [Timeseries]. *)

val flamegraph_html : fmt:(int -> string) -> (string list * int) list -> string
(** Icicle flamegraph divs from folded stacks; [fmt] renders a node's
    inclusive value for the hover title. *)

val profile_section : unit -> string
(** Per-host icicle flamegraph over [Profile.stacks]. *)

val engine_section : unit -> string
(** Wall-clock self-profile: [Selfprof] flamegraph, event-queue depth
    sparkline and queue lifecycle/pop-cost figures. *)

val sampling_section : unit -> string
(** Deterministic PDU-sampling coverage (offered/sampled/rate/seed), from
    [Sample]. *)

val sketch_section : unit -> string
(** Message-latency quantiles (p50/p99/p99.9/max) from the
    [message_latency_ns] sketch fed by [Span.observe_latency]. *)

val metrics_section : unit -> string
(** The full metrics registry as a table. *)
