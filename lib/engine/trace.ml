(* Structured trace events stamped with the virtual-nanosecond clock.

   The tracer is process-global: experiments create their simulators deep
   inside library code, so [Sim.create] registers each new simulator's clock
   (and a fresh Chrome "pid") here rather than having every constructor
   thread a tracer handle through three layers of the stack. Exactly one
   simulator is live at a time in every runner, which makes the
   last-registered clock the active one.

   Disabled tracing must cost nothing on the hot paths: [enabled] is a
   single mutable bool read, and every instrumentation site guards argument
   construction behind it. *)

type category = Cell | Desc | Mux | Tcp | Am | Cpu

let category_name = function
  | Cell -> "cell"
  | Desc -> "desc"
  | Mux -> "mux"
  | Tcp -> "tcp"
  | Am -> "am"
  | Cpu -> "cpu"

type arg = Int of int | Float of float | Str of string

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Complete of int (* duration in virtual ns *)
  | Flow_start of int (* flow id *)
  | Flow_step of int
  | Flow_end of int

type event = {
  ts : int; (* virtual ns *)
  cat : category;
  ph : phase;
  name : string;
  pid : int; (* simulator generation (one per Sim.create) *)
  tid : int; (* host id where the emitter knows it; 0 otherwise *)
  args : (string * arg) list;
}

type sink = event -> unit

let on = ref false
let clock : (unit -> int) ref = ref (fun () -> 0)
let next_pid = ref 0
let cur_pid = ref 0
let sinks : sink list ref = ref []

(* Bounded ring of the most recent events; older ones are overwritten. *)
let default_capacity = 65_536

let dummy =
  { ts = 0; cat = Cpu; ph = Instant; name = ""; pid = 0; tid = 0; args = [] }

let buf = ref [||]
let head = ref 0
let total = ref 0

(* Train-granular slices (DESIGN.md §15): one mutable record per
   coarse-grained span a plan commit synthesizes (uplink serialization,
   switch transit, downlink serialization of a whole train). They live in
   their own ring because truncation listeners patch them in place —
   a split train shrinks its slices to the kept prefix, a fully cut one
   drops them — and they carry future timestamps, so [events] merges them
   with the per-cell ring by timestamp at read time. *)
type slice = {
  mutable sl_ts : int;
  mutable sl_dur : int;
  mutable sl_live : bool;
  sl_cat : category;
  sl_name : string;
  sl_pid : int;
  sl_tid : int;
  sl_args : (string * arg) list;
}

let slice_buf : slice array ref = ref [||]
let slice_head = ref 0
let slice_total = ref 0

let dummy_slice =
  {
    sl_ts = 0;
    sl_dur = 0;
    sl_live = false;
    sl_cat = Cpu;
    sl_name = "";
    sl_pid = 0;
    sl_tid = 0;
    sl_args = [];
  }

let granularity_ref = ref Granularity.Per_train
let granularity () = !granularity_ref
let set_granularity g = granularity_ref := g
let enabled () = !on
let train_slices_wanted () = !on && !granularity_ref = Granularity.Per_train

let start ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.start: capacity must be positive";
  buf := Array.make capacity dummy;
  head := 0;
  total := 0;
  slice_buf := Array.make capacity dummy_slice;
  slice_head := 0;
  slice_total := 0;
  on := true

let stop () = on := false

let clear () =
  buf := [||];
  head := 0;
  total := 0;
  slice_buf := [||];
  slice_head := 0;
  slice_total := 0;
  sinks := []

let add_sink f = sinks := !sinks @ [ f ]

(* Called by [Sim.create]: the new simulator becomes the clock source and
   gets a fresh pid so sub-runs show up as separate tracks in Perfetto. *)
let attach_clock f =
  incr next_pid;
  cur_pid := !next_pid;
  clock := f

(* Ring overwrites are silent data loss; surface them in Metrics so a
   too-small ring is visible in every dump. Registered lazily: a run
   that never overflows keeps its dumps unchanged. *)
let dropped_counter = ref None

let note_drop () =
  let c =
    match !dropped_counter with
    | Some c -> c
    | None ->
        let c =
          Metrics.counter
            ~help:"Trace events lost to ring-buffer overwrite"
            "trace_events_dropped_total" []
        in
        dropped_counter := Some c;
        c
  in
  Metrics.Counter.inc c

let record e =
  List.iter (fun s -> s e) !sinks;
  let cap = Array.length !buf in
  if cap > 0 then begin
    if !total >= cap then note_drop ();
    !buf.(!head) <- e;
    head := (!head + 1) mod cap;
    incr total
  end

let emit ?(tid = 0) ?(args = []) cat ph name =
  if !on then
    record { ts = !clock (); cat; ph; name; pid = !cur_pid; tid; args }

let instant ?tid ?args cat name = emit ?tid ?args cat Instant name
let span_begin ?tid ?args cat name = emit ?tid ?args cat Span_begin name
let span_end ?tid ?args cat name = emit ?tid ?args cat Span_end name
let complete ?tid ?args ~dur cat name = emit ?tid ?args cat (Complete dur) name

(* Flow events: arrows between slices in Perfetto. All points of one
   flow share the same id (and should share a name). *)
let flow_start ?tid ?args ~id cat name =
  emit ?tid ?args cat (Flow_start id) name

let flow_step ?tid ?args ~id cat name = emit ?tid ?args cat (Flow_step id) name
let flow_end ?tid ?args ~id cat name = emit ?tid ?args cat (Flow_end id) name

let train_slice ?(tid = 0) ?(args = []) cat ~ts ~dur name =
  let s =
    {
      sl_ts = ts;
      sl_dur = dur;
      sl_live = true;
      sl_cat = cat;
      sl_name = name;
      sl_pid = !cur_pid;
      sl_tid = tid;
      sl_args = args;
    }
  in
  let cap = Array.length !slice_buf in
  if cap > 0 then begin
    if !slice_total >= cap then note_drop ();
    !slice_buf.(!slice_head) <- s;
    slice_head := (!slice_head + 1) mod cap;
    incr slice_total
  end;
  s

let set_slice s ~ts ~dur =
  s.sl_ts <- ts;
  s.sl_dur <- dur

let drop_slice s = s.sl_live <- false
let total_events () = !total + !slice_total

let dropped_events () =
  let overwritten buf total =
    let cap = Array.length !buf in
    if cap = 0 then !total else max 0 (!total - cap)
  in
  overwritten buf total + overwritten slice_buf slice_total

let event_of_slice s =
  {
    ts = s.sl_ts;
    cat = s.sl_cat;
    ph = Complete s.sl_dur;
    name = s.sl_name;
    pid = s.sl_pid;
    tid = s.sl_tid;
    args = s.sl_args;
  }

let live_slices () =
  let cap = Array.length !slice_buf in
  let n = min !slice_total cap in
  let first = if !slice_total <= cap then 0 else !slice_head in
  List.init n (fun i -> !slice_buf.((first + i) mod cap))
  |> List.filter (fun s -> s.sl_live)
  |> List.stable_sort (fun a b -> compare a.sl_ts b.sl_ts)

let events () =
  let cap = Array.length !buf in
  let n = min !total cap in
  let first = if !total <= cap then 0 else !head in
  let base = List.init n (fun i -> !buf.((first + i) mod cap)) in
  (* Per-cell emissions arrive in clock order; slices carry planned future
     timestamps, so weave them in by timestamp (base events win ties to
     keep the per-cell-only view unchanged). *)
  match live_slices () with
  | [] -> base
  | slices ->
      let rec merge acc slices base =
        match (slices, base) with
        | [], base -> List.rev_append acc base
        | slices, [] -> List.rev_append acc (List.map event_of_slice slices)
        | s :: stl, e :: _ when s.sl_ts < e.ts ->
            merge (event_of_slice s :: acc) stl base
        | slices, e :: etl -> merge (e :: acc) slices etl
      in
      merge [] slices base

(* --- Chrome trace_event JSON export -------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Chrome timestamps are microseconds; three decimals keep ns exactness. *)
let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1_000.)

let add_args b args =
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":";
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
      | Str s ->
          Buffer.add_char b '"';
          escape b s;
          Buffer.add_char b '"')
    args;
  Buffer.add_char b '}'

let add_event b e =
  Buffer.add_string b "{\"name\":\"";
  escape b e.name;
  Buffer.add_string b "\",\"cat\":\"";
  Buffer.add_string b (category_name e.cat);
  Buffer.add_string b "\",\"ph\":\"";
  (match e.ph with
  | Span_begin -> Buffer.add_char b 'B'
  | Span_end -> Buffer.add_char b 'E'
  | Instant -> Buffer.add_char b 'i'
  | Complete _ -> Buffer.add_char b 'X'
  | Flow_start _ -> Buffer.add_char b 's'
  | Flow_step _ -> Buffer.add_char b 't'
  | Flow_end _ -> Buffer.add_char b 'f');
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (us e.ts);
  (match e.ph with
  | Complete dur ->
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (us dur)
  | Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Flow_start id | Flow_step id ->
      Buffer.add_string b (Printf.sprintf ",\"id\":%d" id)
  | Flow_end id ->
      Buffer.add_string b (Printf.sprintf ",\"id\":%d,\"bp\":\"e\"" id)
  | Span_begin | Span_end -> ());
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int e.pid);
  Buffer.add_string b ",\"tid\":";
  Buffer.add_string b (string_of_int e.tid);
  if e.args <> [] then add_args b e.args;
  Buffer.add_char b '}'

(* A bare JSON array of event objects — the form both chrome://tracing and
   Perfetto accept directly. *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      add_event b e)
    (events ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write_chrome_file path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc
