(* A pcapng (pcap-ng) capture writer over the virtual clock.

   Captured packets carry virtual-nanosecond timestamps: each interface
   declares if_tsresol = 9 (10^-9 seconds per tick), so the simulated
   times open unscaled in Wireshark. Little-endian throughout, matching
   the byte-order magic we write.

   Process-global like Trace: [Sim.create] registers the live clock.
   Packets are retained in memory while enabled and serialized on
   demand, so block layout is deterministic: one Section Header Block,
   the Interface Description Blocks in registration order, then one
   Enhanced Packet Block per captured packet in capture order. *)

let linktype_ethernet = 1
let linktype_sunatm = 123

type iface = { if_name : string; linktype : int }
type packet = { p_iface : int; ts : int; data : string }

let on = ref false
let clock : (unit -> int) ref = ref (fun () -> 0)
let ifaces : iface list ref = ref [] (* registration order, reversed *)
let packets : packet list ref = ref [] (* capture order, reversed *)
let enabled () = !on

(* Per_cell by default: a full capture needs every cell on the wire, so
   enabling pcap pins the per-cell path. [unetsim] flips this to
   Per_train when PDU sampling is on — then only the sampled PDUs (which
   run per-cell anyway) are captured, and the train path stays engaged. *)
let granularity_ref = ref Granularity.Per_cell
let granularity () = !granularity_ref
let set_granularity g = granularity_ref := g

let start () =
  ifaces := [];
  packets := [];
  on := true

let stop () = on := false

let clear () =
  ifaces := [];
  packets := []

let attach_clock f = clock := f

let iface ~name ~linktype =
  let rec find i = function
    | [] -> None
    | f :: _ when f.if_name = name && f.linktype = linktype -> Some i
    | _ :: tl -> find (i + 1) tl
  in
  let known = List.rev !ifaces in
  match find 0 known with
  | Some i -> i
  | None ->
      ifaces := { if_name = name; linktype } :: !ifaces;
      List.length known

let capture ~iface data =
  if !on then packets := { p_iface = iface; ts = !clock (); data } :: !packets

let packet_count () = List.length !packets
let packet_times () = List.rev_map (fun p -> p.ts) !packets

(* --- serialization --------------------------------------------------- *)

let u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let u32 b v =
  u16 b (v land 0xffff);
  u16 b ((v lsr 16) land 0xffff)

let pad4 b n =
  for _ = 1 to (4 - (n land 3)) land 3 do
    Buffer.add_char b '\000'
  done

(* An option: code, length, value padded to 32 bits. *)
let add_opt b code value =
  u16 b code;
  u16 b (String.length value);
  Buffer.add_string b value;
  pad4 b (String.length value)

let end_of_opts b = u32 b 0

(* Section Header Block: no options, section length unknown (-1). *)
let add_shb b =
  u32 b 0x0A0D0D0A;
  u32 b 28;
  u32 b 0x1A2B3C4D;
  u16 b 1;
  (* major *)
  u16 b 0;
  (* minor *)
  u32 b 0xFFFFFFFF;
  u32 b 0xFFFFFFFF;
  (* section length = -1 *)
  u32 b 28

(* Interface Description Block with if_name and if_tsresol=9 options. *)
let add_idb b f =
  let name_padded = 4 + String.length f.if_name + ((4 - (String.length f.if_name land 3)) land 3) in
  let len = 16 + name_padded + 8 (* tsresol opt *) + 4 (* end *) + 4 in
  u32 b 0x00000001;
  u32 b len;
  u16 b f.linktype;
  u16 b 0;
  (* reserved *)
  u32 b 0;
  (* snaplen: unlimited *)
  add_opt b 2 f.if_name;
  add_opt b 9 "\009";
  (* if_tsresol: nanoseconds *)
  end_of_opts b;
  u32 b len

(* Enhanced Packet Block; timestamp in interface resolution (ns). *)
let add_epb b p =
  let dlen = String.length p.data in
  (* fixed part: type, length, iface, ts hi/lo, captured, original = 28 *)
  let len = 28 + dlen + ((4 - (dlen land 3)) land 3) + 4 in
  u32 b 0x00000006;
  u32 b len;
  u32 b p.p_iface;
  u32 b ((p.ts lsr 32) land 0xFFFFFFFF);
  u32 b (p.ts land 0xFFFFFFFF);
  u32 b dlen;
  (* captured *)
  u32 b dlen;
  (* original *)
  Buffer.add_string b p.data;
  pad4 b dlen;
  u32 b len

let to_string () =
  let b = Buffer.create 4096 in
  add_shb b;
  List.iter (add_idb b) (List.rev !ifaces);
  List.iter (add_epb b) (List.rev !packets);
  Buffer.contents b

let write_file path =
  let oc = open_out_bin path in
  output_string oc (to_string ());
  close_out oc
