(** Wall-clock self-observability: a monotonic-clock and GC-allocation
    attribution profiler over the same frame taxonomy as the virtual-time
    {!Profile}, plus the bounded histograms behind the event-queue
    introspection.

    Charges are deltas of the monotonic clock and of [Gc.counters] taken
    at every transition (frame enter/exit, event dispatch begin/end) and
    charged to the node executing through the interval, so nothing is
    double-counted and the root's inclusive wall time equals measured
    elapsed wall time by construction.

    The tree is rooted at a single [engine] node whose depth-1 children
    are event kinds ([ev:<schedule label>]) and out-of-event frames;
    frames entered while an event runs nest under its kind node, and
    inter-event loop overhead is the root's exclusive time.

    [Profile.push]/[Profile.pop] forward here, so one instrumentation
    site feeds both profilers; [Sim.step] drives the event windows and
    the queue histograms. Process-global, off by default, one boolean
    test per call when disabled. *)

val start : unit -> unit
(** Enable and clear; the elapsed origin is the current wall time. *)

val stop : unit -> unit
(** Final charge, freeze elapsed time, disable, and fold per-layer
    [selfprof_wall_ns_total{layer}] / [selfprof_alloc_words_total{layer}]
    counters into the metrics registry. *)

val clear : unit -> unit
val enabled : unit -> bool

val now_ns : unit -> int
(** The monotonic clock, in nanoseconds (arbitrary origin). *)

val elapsed_wall_ns : unit -> int
(** Wall ns since {!start} (frozen by {!stop}). *)

(** {2 Transitions (called by [Profile] and [Sim])} *)

val enter : string -> unit
(** Enter a named frame (forwarded from [Profile.push]). *)

val exit_frame : unit -> unit
(** Leave the innermost frame. An exit with no frame open in the current
    event window only bumps {!unmatched_exits} — it is the matching pop
    of a frame that slept across events. *)

val event_begin : label:string -> unit
(** An event thunk is about to run: open a fresh window under the
    [ev:<label>] kind node ([ev:event] when the label is empty). *)

val event_end : unit -> unit
(** The thunk returned: rewind frames it left open (counted in
    {!dangling}) and accumulate the per-kind event summary. *)

val unmatched_exits : unit -> int
val dangling : unit -> int

(** {2 Event-queue histograms (reported by [Sim] when enabled)} *)

val observe_pop_cost : int -> unit
(** Heap operations needed to surface one live event (tombstones skipped
    plus sift swaps). *)

val observe_batch : int -> unit
(** Number of events fired at one identical timestamp. *)

val pop_cost_hist : unit -> (int * int) list
(** (cost, occurrences); the last bucket absorbs all larger costs. *)

val pop_cost_mean : unit -> float
val batch_size_hist : unit -> (int * int) list
val batch_size_mean : unit -> float

(** {2 Dumps} *)

val stacks : unit -> (string list * int) list
(** Every stack with its exclusive wall ns, deterministic order. Paths
    start at the [engine] root; uncharged tail time (only while still
    enabled) shows as root-exclusive, so root inclusive tracks elapsed. *)

val alloc_stacks : unit -> (string list * int) list
(** The same tree with exclusive allocated words (minor + major direct)
    as values. *)

val to_folded_string : unit -> string
(** Collapsed-stack text (flamegraph.pl / speedscope format) of wall ns. *)

val write_folded : string -> unit

val kind_summaries : unit -> (string * int * int * float) list
(** Per event kind: (label, events, wall ns, allocated words). *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable per-kind table plus queue histogram means. *)

val fold_metrics : unit -> unit
(** Fold per-layer wall/alloc counters into [Metrics] (done by {!stop};
    exposed for tests). *)
