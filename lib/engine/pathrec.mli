(** INT-style per-PDU path records (DESIGN.md §17).

    One record per delivered PDU: who sent it, which VCI it rode, and for
    every switch stage it crossed a hop entry — stage id, ingress/egress
    port, output-queue depth at arrival, and the hop latency (forwarding
    instant minus the previous stage's forwarding instant, or minus the
    injection instant for the first hop). The fabric stamps records at
    real instants on the per-cell path and synthesizes the identical
    schema analytically from committed train plans, so a run's export is
    byte-identical whichever path its PDUs rode.

    Records synthesized from a plan are provisional until their EOP cell
    has really been accepted by the sender's uplink ([settle]): a train
    truncation discards the provisional records of cut cells (the
    per-cell path re-stamps them for real). Per-hop-position latency
    sketches ([atm_path_hop_latency_ns{hop="<j>"}]) are fed only at
    settle, by the owning fabric's registered metrics flush, so nothing
    here pins the train fast path. *)

type hop = {
  h_stage : int;  (** switch id (fabric stage) *)
  h_in_port : int;
  h_out_port : int;
  h_queue : int;  (** output-queue depth at the cell's arrival *)
  h_latency_ns : int;
      (** forwarding instant minus the previous forwarding (or injection)
          instant: serialization + queueing on the ingress link,
          propagation, and switch transit *)
}

type record = {
  r_src : int;
  r_dst : int;
  r_vci : int;  (** the sender-side (uplink) VCI *)
  r_seq : int;  (** per-flow PDU sequence number *)
  r_injected : Sim.time;
  r_delivered : Sim.time;
  r_hops : hop array;
}

val start : unit -> unit
val stop : unit -> unit
val enabled : unit -> bool

val clear : unit -> unit
(** Drop all records (settled and provisional) and reset the hop
    sketches; keeps the enabled flag. *)

val add : settle:Sim.time -> record -> record
(** Install a record. It becomes visible to {!records}/{!write_json} and
    feeds the hop sketches once {!fold} passes [settle] — the instant its
    EOP cell is irrevocably on the wire (per-cell stampers pass the
    delivery instant; train synthesis passes the EOP cell's planned
    uplink acceptance). Returns the record for later {!discard}. *)

val discard : record -> unit
(** A provisional record's train was truncated before its settle instant:
    forget it (the cut cells re-run per-cell and re-stamp for real). *)

val fold : now:Sim.time -> unit
(** Settle every provisional record with [settle <= now]. The owning
    fabric registers this as a metrics flush so every registry read and
    export sees settled state. *)

val count : unit -> int
(** Settled records so far (ring overflow included). *)

val dropped : unit -> int
(** Settled records lost to the bounded ring. *)

val records : unit -> record list
(** Settled records, ordered by (delivered, src, vci, seq) — a pure
    function of the traffic, independent of commit order, so train and
    per-cell runs list identically. *)

val hop_quantile : hop:int -> float -> float option
(** Quantile of the hop-position latency sketch (hop 0 = first switch
    stage); [None] before any record settles at that position. *)

val write_json : string -> unit
(** Export the settled records ({!records} order) plus the drop count. *)
