(** Bench-snapshot comparison rules (the logic behind [bin/benchdiff]).

    A global symmetric tolerance covers the deterministic virtual-time
    members (curve points, checks, copy counters); per-metric {!gate}s —
    declared in the baseline snapshot's top-level ["gates"] object — add
    direction-aware tolerances for wall-clock metrics, where only
    movement in the bad direction is a regression and an improvement of
    any size must pass. *)

type direction =
  | Lower_is_better  (** flag only increases (µs/event, allocs/event) *)
  | Higher_is_better  (** flag only decreases (events/sec) *)
  | Both  (** symmetric, like the global tolerance *)

type gate = { g_tolerance : float; g_direction : direction }

val direction_name : direction -> string
val direction_of_name : string -> direction option

val gate_json : gate -> Json.t
val gates_json : (string * gate) list -> Json.t
(** The ["gates"] object a snapshot writer embeds. *)

val gates_of_json : Json.t -> (string * gate) list
(** Parse a snapshot's ["gates"] member (missing/malformed entries are
    skipped). *)

val violates : gate -> baseline:float -> current:float -> bool
(** Movement from [baseline] to [current] in the gate's bad direction
    beyond its tolerance. *)

val signed_delta : float -> float -> float
(** Relative drift, positive when current exceeds baseline. *)

val rel_delta : float -> float -> float

val diff : tolerance:float -> Json.t -> Json.t -> string list
(** [diff ~tolerance baseline current] returns one message per flagged
    value: failed checks, drifted/missing curve points (symmetric,
    global tolerance), violated baseline gates (direction-aware), and
    drifted copy counters (unless a gate names them). Empty means the
    snapshots agree. *)

val metric_rows :
  Json.t -> Json.t -> (string * float option * float option) list
(** Side-by-side top-level numeric members for display. *)

val series : Json.t -> (string * (float * float) list) list
val checks : Json.t -> (string * bool) list
val numeric : string -> Json.t -> float option
