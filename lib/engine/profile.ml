(* A virtual-time attribution profiler.

   Layers push/pop named frames around the regions that spend virtual time
   (CPU charges, NI server occupancy), and the places that actually account
   that time — [Host.Cpu.charge_raw], the NI submit sites — report it here
   with [charge] at the moment it is charged, *before* the implied
   [Proc.sleep]. Attributing at the charge site rather than measuring
   elapsed time between push and pop is what keeps the numbers honest in a
   discrete-event world: while one process sleeps through its charge,
   other processes (other hosts, the NI, timers) run, and their time must
   not leak into the sleeping frame.

   Frames are keyed per host. Two processes on the same host can interleave
   pushes and pops across sleeps, in which case a pop may structurally
   remove the other process's frame; the stacks stay balanced and the total
   time conserved, but a charge landing in that window is attributed to the
   unioned path. This is rare (it needs two runnable processes on one
   simulated CPU) and bounded, and it is the price of not threading a
   profiler context through every layer; DESIGN.md §12 discusses it.

   The folded ("collapsed-stack") output is the flamegraph.pl / speedscope
   interchange format: one line per stack, semicolon-separated frames, a
   space, and the exclusive time in that stack. Each host gets a synthetic
   root frame [host<N>] whose exclusive time is the run's elapsed virtual
   time minus everything attributed beneath it, so the root's *inclusive*
   time equals elapsed virtual time by construction and idle time is
   visible rather than hidden. *)

type node = {
  n_name : string;
  n_children : (string, node) Hashtbl.t;
  mutable n_order : string list; (* creation order, reversed *)
  mutable n_self : int; (* exclusive virtual ns charged right here *)
}

let mk_node name =
  { n_name = name; n_children = Hashtbl.create 4; n_order = []; n_self = 0 }

type host_state = {
  h_root : node;
  mutable h_stack : node list; (* innermost frame first; [] = at root *)
}

let enabled_flag = ref false
let clock : (unit -> int) ref = ref (fun () -> 0)
let start_ts = ref 0
let hosts_tbl : (int, host_state) Hashtbl.t = Hashtbl.create 8
let host_order : int list ref = ref []
let underflows = ref 0

let enabled () = !enabled_flag
let attach_clock f = clock := f

let clear () =
  Hashtbl.reset hosts_tbl;
  host_order := [];
  underflows := 0;
  start_ts := !clock ()

let start () =
  clear ();
  enabled_flag := true

let stop () = enabled_flag := false
let elapsed () = !clock () - !start_ts

let host_state host =
  match Hashtbl.find_opt hosts_tbl host with
  | Some h -> h
  | None ->
      let h =
        { h_root = mk_node (Printf.sprintf "host%d" host); h_stack = [] }
      in
      Hashtbl.replace hosts_tbl host h;
      host_order := host :: !host_order;
      h

let child parent name =
  match Hashtbl.find_opt parent.n_children name with
  | Some n -> n
  | None ->
      let n = mk_node name in
      Hashtbl.replace parent.n_children name n;
      parent.n_order <- name :: parent.n_order;
      n

let top h = match h.h_stack with n :: _ -> n | [] -> h.h_root

(* One frame instrumentation site feeds both attributions: pushes and
   pops forward to the wall-clock self-profiler ([Selfprof]) whenever it
   is enabled, independently of this profiler's own flag, so --selfprof
   works alone and composes with --profile without double charging —
   virtual time is attributed at charge sites, wall time at transitions,
   and neither reads the other's accumulators. *)
let push ?(host = 0) name =
  if Selfprof.enabled () then Selfprof.enter name;
  if !enabled_flag then begin
    let h = host_state host in
    h.h_stack <- child (top h) name :: h.h_stack
  end

let pop ?(host = 0) () =
  if Selfprof.enabled () then Selfprof.exit_frame ();
  if !enabled_flag then
    let h = host_state host in
    match h.h_stack with
    | _ :: rest -> h.h_stack <- rest
    | [] -> incr underflows

let charge ?(host = 0) ?(frames = []) ns =
  if !enabled_flag && ns > 0 then begin
    let h = host_state host in
    let n = List.fold_left child (top h) frames in
    n.n_self <- n.n_self + ns
  end

let charge_root ?(host = 0) ~frames ns =
  if !enabled_flag && ns > 0 then begin
    let h = host_state host in
    let n = List.fold_left child h.h_root frames in
    n.n_self <- n.n_self + ns
  end

let depth ~host =
  match Hashtbl.find_opt hosts_tbl host with
  | None -> 0
  | Some h -> List.length h.h_stack

let unmatched_pops () = !underflows
let hosts () = List.rev !host_order

(* Inclusive time of a subtree: its own exclusive time plus everything
   below it. *)
let rec inclusive n =
  Hashtbl.fold (fun _ c acc -> acc + inclusive c) n.n_children n.n_self

(* Stacks in deterministic order (children in creation order), with the
   root's exclusive time computed as elapsed - attributed (clamped at 0 in
   case concurrent same-host charges ever overlap past 100% utilization). *)
let stacks () =
  let el = elapsed () in
  let acc = ref [] in
  let rec walk path n self =
    let path = path @ [ n.n_name ] in
    if self > 0 || path = [ n.n_name ] then acc := (path, self) :: !acc;
    List.iter
      (fun name ->
        let c = Hashtbl.find n.n_children name in
        walk path c c.n_self)
      (List.rev n.n_order)
  in
  List.iter
    (fun host ->
      let h = Hashtbl.find hosts_tbl host in
      let attributed = inclusive h.h_root in
      let root_self = max 0 (el - attributed) in
      walk [] h.h_root (h.h_root.n_self + root_self))
    (hosts ());
  List.rev !acc

let to_folded_string () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (path, self) ->
      if self > 0 then begin
        Buffer.add_string b (String.concat ";" path);
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int self);
        Buffer.add_char b '\n'
      end)
    (stacks ());
  Buffer.contents b

let write_folded path =
  let oc = open_out path in
  output_string oc (to_folded_string ());
  close_out oc
