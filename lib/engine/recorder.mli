(** Bounded flight recorder and stall watchdog with post-mortem bundles.

    When armed ({!start}), sender-side protocols report per-flow unacked
    ("pending") state, receivers report per-flow deliveries, and queue
    owners register snapshot callbacks. The watchdog — ticked from the
    simulator's event loop — declares a stall when some flow has had
    pending data for longer than the deadline with nothing delivered, on
    that flow or anywhere else, since its pending epoch began; a sender
    whose receiver finished and stopped polling (the benign end-of-run
    shape) is exonerated by its own traffic still landing in the
    receiver's rings, while a black-holed sender — whole fabric silent
    with data owed — is not.

    On trigger — stall, or an explicit {!trigger} for failed experiment
    checks — the recorder disarms (exactly one bundle per arming) and
    dumps a post-mortem bundle to its directory: manifest (reason, flow
    table), all snapshots, recent trace events, the metrics registry, and
    whatever of timeseries/profile/spans is enabled. The bundle is also
    kept in memory for tests.

    Process-global, off by default; every reporting call is a single
    boolean test when disarmed. *)

val start : ?dir:string -> ?deadline:int -> ?recent:int -> unit -> unit
(** Arm the watchdog. [dir] is where the bundle lands (default
    ["postmortem"]), [deadline] the stall threshold in simulated ns
    (default 2 s — past the UAM retransmission give-up), [recent] how
    many trailing trace events the bundle keeps (default 256). *)

val stop : unit -> unit
val armed : unit -> bool

val attach_clock : (unit -> int) -> unit
(** Called by [Sim.create] with the cumulative virtual-time clock; also
    bumps the flow generation so pending state left over from a previous
    simulator instance cannot trigger on a later one. *)

(** {2 Reporting (no-ops when disarmed)} *)

val sender_pending : key:string -> int -> unit
(** Absolute count of unacked messages on a directed flow (e.g.
    ["uam.0->1"]). A rise from zero or any ack progress restarts the
    flow's pending epoch. *)

val flow_delivered : key:string -> unit
(** The receiver processed a message on the flow (same key string as the
    sender uses for the opposite direction). *)

val note_delivery : unit -> unit
(** A payload reached some endpoint (flow-agnostic; manifest context). *)

val gave_up : key:string -> unit
(** The sender abandoned retransmission on the flow. *)

val register_snapshot : string -> (unit -> Json.t) -> unit
(** Register (or replace) a named state-snapshot callback, invoked only
    when a bundle is built. Safe to call from component constructors. *)

(** {2 Watchdog and triggers} *)

val tick : int -> unit
(** Called by [Sim.step] with cumulative virtual time; fires the
    post-mortem if any current-generation flow is stalled. *)

val trigger : reason:string -> unit
(** Explicit trigger (e.g. an experiment check failed while armed). *)

type trigger_info = { tr_reason : string; tr_at : int; tr_dir : string }

val last_trigger : unit -> trigger_info option
val trigger_count : unit -> int

val last_bundle : unit -> (string * Json.t) list
(** The most recent bundle's JSON parts (manifest/snapshots/events), as
    written, for tests. *)
