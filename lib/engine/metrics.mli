(** A process-global registry of labelled counters, gauges and virtual-time
    histograms, dumpable as Prometheus text exposition or JSON.

    Instruments are deduplicated by (family name, label set): registering
    the same pair again returns the existing instrument. Label order does
    not matter. {!reset} zeroes all values but keeps every registration, so
    handles held by long-lived modules remain valid and declared families
    keep appearing in dumps even at zero. *)

type labels = (string * string) list

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit

  val set_max : t -> float -> unit
  (** Raise the gauge to [v] if above its current value (high-water marks). *)

  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val summary : t -> Stats.Summary.t
  val count : t -> int
end

(** A DDSketch-style log-bucketed quantile sketch: every reported
    quantile is within relative error [alpha] (default 1%) of the exact
    sample at that rank, at O(occupied buckets) memory however many
    values are observed. Use it where a {!Histogram} (which retains every
    sample) would grow without bound — e.g. per-message latency over a
    millions-of-messages run. *)
module Sketch : sig
  type t

  val create : ?alpha:float -> unit -> t
  val observe : t -> float -> unit
  val clear : t -> unit
  val count : t -> int
  val total : t -> float
  val max : t -> float
  val alpha : t -> float

  val quantile : t -> float -> float
  (** Nearest-rank quantile (rank [q*(n-1)]); raises [Invalid_argument]
      when the sketch is empty. *)
end

val counter : ?help:string -> string -> labels -> Counter.t
val gauge : ?help:string -> string -> labels -> Gauge.t

val gauge_fn : ?help:string -> string -> labels -> (unit -> float) -> unit
(** A gauge whose value is computed by callback at dump time.
    Re-registration replaces the callback (a fresh component instance with
    the same identity wins). *)

val on_gauge_fn : (string -> labels -> (unit -> float) -> unit) -> unit
(** Observe every {!gauge_fn} registration — past (replayed immediately
    with canonical labels) and future. One registration, two consumers:
    this is how [Engine.Timeseries] samples callback gauges continuously
    instead of only reading them at dump time. *)

val histogram : ?help:string -> string -> labels -> Histogram.t

val sketch : ?help:string -> ?alpha:float -> string -> labels -> Sketch.t
(** Register (or fetch) a quantile sketch. Dumps as a summary with
    p50/p99/p99.9 quantile lines plus [_sum]/[_count]. *)

val register_flush : (unit -> unit) -> unit
(** Register a deferred-accounting flush, run before every registry read
    ([counter_value], the Prometheus/JSON dumps). Layers that fold state
    into metrics lazily use this so dumps always see settled values.
    Registrations are cleared by [reset]. *)

val flush : unit -> unit
(** Run all registered flushes now. *)

val reset : unit -> unit
(** Zero every value; keep all registrations. *)

val counter_value : string -> labels -> int option
(** Look up a counter sample's current value (for tests and checks). *)

val pp_prometheus : Format.formatter -> unit -> unit
val pp_json : Format.formatter -> unit -> unit
val to_prometheus_string : unit -> string
val to_json_string : unit -> string

val write_file : string -> unit
(** Dump the registry to a file: [.json] selects the JSON dump, any other
    extension the Prometheus text exposition format. *)
