module Counter = struct
  type t = { cname : string; mutable v : int }

  let create cname = { cname; v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let name t = t.cname
  let reset t = t.v <- 0
end

module Summary = struct
  type t = {
    mutable samples : float list;
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable mn : float;
    mutable mx : float;
    mutable sorted : float array option; (* cache, invalidated by add *)
  }

  let create () =
    {
      samples = [];
      n = 0;
      sum = 0.;
      sumsq = 0.;
      mn = infinity;
      mx = neg_infinity;
      sorted = None;
    }

  let add t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    t.sorted <- None

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
  let min t = t.mn
  let max t = t.mx

  let stddev t =
    if t.n < 2 then 0.
    else
      let n = float_of_int t.n in
      let m = t.sum /. n in
      Float.sqrt (Float.max 0. ((t.sumsq /. n) -. (m *. m)))

  let percentile t p =
    if t.n = 0 then invalid_arg "Summary.percentile: empty";
    let a =
      match t.sorted with
      | Some a -> a
      | None ->
          let a = Array.of_list t.samples in
          Array.sort Float.compare a;
          t.sorted <- Some a;
          a
    in
    let n = Array.length a in
    let p = Float.max 0. (Float.min 1. p) in
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
end

module Series = struct
  type t = { label : string; points : (float * float) list }

  let make label points = { label; points }

  let pp_row fmt (x, y) = Format.fprintf fmt "%12.1f  %12.3f" x y

  let pp fmt t =
    Format.fprintf fmt "# %s@\n" t.label;
    List.iter (fun p -> Format.fprintf fmt "%a@\n" pp_row p) t.points

  let y_at t x =
    match t.points with
    | [] -> invalid_arg "Series.y_at: empty series"
    | (x0, y0) :: rest ->
        let _, y =
          List.fold_left
            (fun (bx, by) (px, py) ->
              if Float.abs (px -. x) < Float.abs (bx -. x) then (px, py)
              else (bx, by))
            (x0, y0) rest
        in
        y

  let max_y t = List.fold_left (fun acc (_, y) -> Float.max acc y) neg_infinity t.points
  let min_y t = List.fold_left (fun acc (_, y) -> Float.min acc y) infinity t.points
end
