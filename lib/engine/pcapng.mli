(** Virtual-time pcapng capture.

    Captures simulated frames (ATM cells, Ethernet frames) with
    virtual-nanosecond timestamps into the pcapng container format, so a
    run opens directly in Wireshark. Each interface declares
    [if_tsresol = 9], making one timestamp tick one virtual nanosecond.

    Process-global like {!Trace}: [Sim.create] registers the live
    simulator's clock. Disabled by default; {!capture} costs one boolean
    read when off, so taps can build their bytes behind {!enabled}. *)

val linktype_ethernet : int
(** LINKTYPE_ETHERNET (1). *)

val linktype_sunatm : int
(** LINKTYPE_SUNATM (123): 4-byte pseudo-header (flags, VPI, VCI
    big-endian) before the cell payload. *)

val enabled : unit -> bool

val granularity : unit -> Granularity.t
val set_granularity : Granularity.t -> unit
(** [Per_cell] (the default): a full capture needs every cell on the
    wire, so enabling pcap pins the per-cell path. Set [Per_train] when
    PDU sampling is on — sampled PDUs run per-cell (and get captured)
    while the rest ride the train path uncaptured. *)

val start : unit -> unit
(** Enable capture into a fresh packet store. *)

val stop : unit -> unit
val clear : unit -> unit
val attach_clock : (unit -> int) -> unit

val iface : name:string -> linktype:int -> int
(** Register (or look up) a capture interface; returns its pcapng
    interface id. Idempotent per (name, linktype). *)

val capture : iface:int -> string -> unit
(** Record a packet on [iface] at the current virtual time. *)

val packet_count : unit -> int

val packet_times : unit -> int list
(** Capture timestamps in capture order (for monotonicity checks). *)

val to_string : unit -> string
(** The full capture: SHB, IDBs in registration order, then EPBs in
    capture order. Little-endian, no other block types. *)

val write_file : string -> unit
