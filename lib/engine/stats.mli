(** Measurement helpers: counters and summary statistics over samples. *)

(** Named monotonic counters. *)
module Counter : sig
  type t

  val create : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit
end

(** Accumulates float samples; exposes count/mean/min/max/stddev and
    percentiles. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float

  val percentile : t -> float -> float
  (** [percentile s p] with [p] clamped to \[0, 1\]: the value at rank
      [p * (count - 1)], linearly interpolated between the two adjacent
      sorted samples. [percentile s 0.5] is the median.

      @raise Invalid_argument on an empty summary — callers must check
      {!count} first (histogram dumps do). *)

  val total : t -> float
end

(** A labelled (x, y) series, as produced for each curve of a figure. *)
module Series : sig
  type t = { label : string; points : (float * float) list }

  val make : string -> (float * float) list -> t
  val pp_row : Format.formatter -> float * float -> unit
  val pp : Format.formatter -> t -> unit

  val y_at : t -> float -> float
  (** Y value at the x closest to the argument. Raises on empty series. *)

  val max_y : t -> float
  val min_y : t -> float
end
