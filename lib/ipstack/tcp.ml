open Engine

let log_src = Logs.Src.create "ipstack.tcp" ~doc:"TCP state machine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Registered at module-init time so the tcp_* families appear in every
   metrics dump, even from experiments that carry no TCP traffic. *)
let m_retx =
  Metrics.counter ~help:"TCP segments retransmitted (any cause)"
    "tcp_retransmits_total" []

let m_fast =
  Metrics.counter ~help:"TCP fast retransmits (triple duplicate ack)"
    "tcp_fast_retransmits_total" []

let m_rto =
  Metrics.counter ~help:"TCP retransmission-timer fires"
    "tcp_rto_fires_total" []

let m_cwnd =
  Metrics.histogram ~help:"TCP congestion window samples on ack receipt (bytes)"
    "tcp_cwnd_bytes" []

(* ------------------------------------------------------------------ *)
(* Circular byte buffer addressed by absolute stream offsets.          *)

module Bytebuf = struct
  type t = {
    data : bytes;
    cap : int;
    mutable base : int; (* stream offset of the first byte held *)
    mutable base_idx : int; (* its index in [data] *)
    mutable len : int;
  }

  let create cap =
    { data = Bytes.create cap; cap; base = 0; base_idx = 0; len = 0 }

  let space t = t.cap - t.len
  let length t = t.len
  let base t = t.base
  let tail t = t.base + t.len

  let set_base t b =
    if t.len <> 0 then invalid_arg "Bytebuf.set_base: non-empty";
    t.base <- b

  (* append as much of [src] as fits; returns the number of bytes taken.
     The blit into the ring is a counted copy (socket-buffer fill). *)
  let append t ~layer src pos len =
    let n = min len (space t) in
    let start = (t.base_idx + t.len) mod t.cap in
    let first = min n (t.cap - start) in
    if first > 0 then
      Buf.copy_into ~layer (Buf.sub src ~pos ~len:first) ~dst:t.data
        ~dst_pos:start;
    if n > first then
      Buf.copy_into ~layer
        (Buf.sub src ~pos:(pos + first) ~len:(n - first))
        ~dst:t.data ~dst_pos:0;
    t.len <- t.len + n;
    n

  (* copy out [len] bytes starting at absolute stream offset [abs]. This is
     a counted copy, not a view: the ring reuses its storage once data is
     acked, but emitted segments (and frames still on the wire) may outlive
     that — retransmittable data must own its bytes. *)
  let read t ~layer ~abs ~len =
    if abs < t.base || abs + len > tail t then
      invalid_arg "Bytebuf.read: range not buffered";
    let out = Bytes.create len in
    let start = (t.base_idx + (abs - t.base)) mod t.cap in
    let first = min len (t.cap - start) in
    Buf.blit_bytes ~layer ~src:t.data ~src_pos:start ~dst:out ~dst_pos:0
      ~len:first;
    if len > first then
      Buf.blit_bytes ~layer ~src:t.data ~src_pos:0 ~dst:out ~dst_pos:first
        ~len:(len - first);
    out

  (* drop [n] bytes from the front *)
  let advance t n =
    if n < 0 || n > t.len then invalid_arg "Bytebuf.advance";
    t.base <- t.base + n;
    t.base_idx <- (t.base_idx + n) mod t.cap;
    t.len <- t.len - n
end

(* ------------------------------------------------------------------ *)

type config = {
  mss : int;
  sndbuf : int;
  rcvbuf : int;
  granularity : Sim.time;
  delayed_ack : bool;
  delack_timeout : Sim.time;
  initial_rto : Sim.time;
  max_rto : Sim.time;
  send_cost : int -> int;
  recv_cost : int -> int;
}

let unet_config ?(window = 8 * 1024) () =
  {
    mss = 2048;
    sndbuf = window;
    rcvbuf = window;
    granularity = Sim.ms 1;
    delayed_ack = false;
    delack_timeout = Sim.ms 200;
    initial_rto = Sim.ms 2;
    max_rto = Sim.sec 1;
    (* ≈9 µs per data segment of user-level TCP processing (checksum
       combined with the copy) — the 157 µs small-message round trip of
       Table 3; bare acks are a 40-byte header handled in ~4 µs, cheap
       enough to disable delayed acks entirely (§7.8) *)
    send_cost =
      (fun len ->
        if len = 0 then 4_000 else 9_000 + (Checksum.cost_ns len / 4));
    recv_cost =
      (fun len ->
        if len = 0 then 4_000 else 9_000 + (Checksum.cost_ns len / 4));
  }

let kernel_config ?(window = 64 * 1024) ?(mss = 9_148) kcfg =
  {
    mss;
    sndbuf = window;
    rcvbuf = window;
    granularity = Sim.ms 500;
    delayed_ack = true;
    delack_timeout = Sim.ms 200;
    initial_rto = Sim.sec 1;
    max_rto = Sim.sec 64;
    send_cost = (fun len -> Host.Kernel.send_cost kcfg Host.Kernel.Tcp ~len);
    recv_cost = (fun len -> Host.Kernel.recv_cost kcfg Host.Kernel.Tcp ~len);
  }

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Closed -> "closed"
    | Listen -> "listen"
    | Syn_sent -> "syn-sent"
    | Syn_rcvd -> "syn-rcvd"
    | Established -> "established"
    | Fin_wait_1 -> "fin-wait-1"
    | Fin_wait_2 -> "fin-wait-2"
    | Close_wait -> "close-wait"
    | Closing -> "closing"
    | Last_ack -> "last-ack"
    | Time_wait -> "time-wait")

let header_size = 20
let f_fin = 1
let f_syn = 2
let f_ack = 16

(* Sequence space: both directions use ISS 0, so the SYN is stream offset 0
   and data begins at offset 1. A queued FIN occupies offset [fin_seq] =
   one past the last data byte. Offsets are plain ints (runs stay far below
   the 2^30 wire wrap we mask with). *)

type t = {
  stack : stack;
  cfg : config;
  lport : int;
  rport : int;
  raddr : int;
  cond : Sync.Condition.t;
  mutable st : state;
  (* send side; sndbuf holds unacked/unsent data *)
  sndbuf : Bytebuf.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable fin_queued : bool;
  mutable fin_seq : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable rwnd : int;
  mutable dup_acks : int;
  (* Jacobson RTT estimation; at most one timed segment in flight *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : Sim.time;
  mutable timing : (int * Sim.time) option;
  (* receive side; rcvbuf.base is the application's read point *)
  rcvbuf : Bytebuf.t;
  mutable rcv_nxt : int;
  mutable ooo : (int * Buf.t * bool) list;
      (* (seq, data, fin) sorted; retained views of delivered packets,
         which own their storage *)
  mutable fin_rcvd : bool;
  mutable segs_since_ack : int;
  (* timers *)
  mutable retx_timer : Sim.handle option;
  mutable delack_timer : Sim.handle option;
  (* stats *)
  mutable n_retx : int;
  mutable n_fast_retx : int;
  mutable n_timeouts : int;
  mutable n_bytes_sent : int;
  mutable n_bytes_rcvd : int;
  (* seq -> span of the first emission, for retransmit parentage; pruned
     below snd_una as acks arrive *)
  seg_ctx : (int, Span.ctx) Hashtbl.t;
}

and listener = {
  l_port : int;
  l_stack : stack;
  l_accepted : t Queue.t;
  l_cond : Sync.Condition.t;
}

and stack = {
  s_ip : Ipv4.t;
  s_cfg : config;
  s_conns : (int * int * int, t) Hashtbl.t;
  s_listeners : (int, listener) Hashtbl.t;
  mutable s_next_port : int;
}

let ip st = st.s_ip
let sim_of t = Ipv4.sim t.stack.s_ip
let state t = t.st
let retransmits t = t.n_retx
let fast_retransmits t = t.n_fast_retx
let timeouts t = t.n_timeouts
let bytes_sent t = t.n_bytes_sent
let bytes_received t = t.n_bytes_rcvd
let cwnd t = t.cwnd
let srtt_us t = t.srtt /. 1_000.
let unacked t = Bytebuf.tail t.sndbuf - t.snd_una

(* --- segment emission --------------------------------------------- *)

(* Span parentage for data segments: first emission of a sequence number
   mints a root; any re-emission (RTO go-back-N, fast retransmit, window
   probe) is a child of the original, so retries stay in the same trace. *)
let seg_span t ~seq ~len =
  if len = 0 then None
  else
    let host = Ipv4.addr t.stack.s_ip in
    match Hashtbl.find_opt t.seg_ctx seq with
    | Some orig -> Some (Span.child ~host "tcp_retx" orig)
    | None ->
        let ctx = Span.root ~host "tcp_seg" in
        Hashtbl.replace t.seg_ctx seq ctx;
        Some ctx

let emit t ~flags ~seq ~payload =
  let len = Bytes.length payload in
  let hdr = Bytes.create header_size in
  Bytes.set_uint16_be hdr 0 t.lport;
  Bytes.set_uint16_be hdr 2 t.rport;
  Bytes.set_int32_be hdr 4 (Int32.of_int (seq land 0x3FFFFFFF));
  Bytes.set_int32_be hdr 8 (Int32.of_int (t.rcv_nxt land 0x3FFFFFFF));
  Bytes.set_uint8 hdr 12 ((header_size / 4) lsl 4);
  Bytes.set_uint8 hdr 13 flags;
  Bytes.set_uint16_be hdr 14 (min 0xffff (Bytebuf.space t.rcvbuf));
  Bytes.set_uint16_be hdr 16 0;
  Bytes.set_uint16_be hdr 18 0;
  (* header prepend by slice concatenation; [payload] comes out of
     Bytebuf.read and is owned by this segment *)
  let pdu = Buf.append (Buf.of_bytes hdr) (Buf.of_bytes payload) in
  let c = Checksum.compute_buf pdu in
  Bytes.set_uint16_be hdr 16 (if c = 0 then 0xffff else c);
  (* every segment carries the current cumulative ack *)
  t.segs_since_ack <- 0;
  (match t.delack_timer with
  | Some h ->
      Sim.cancel h;
      t.delack_timer <- None
  | None -> ());
  let ctx = seg_span t ~seq ~len in
  Ipv4.send t.stack.s_ip Ipv4.Tcp ?ctx ~dst:t.raddr
    ~cost_ns:(t.cfg.send_cost len) pdu

let round_to_granularity t delay =
  let g = t.cfg.granularity in
  (delay + g - 1) / g * g

let cancel_retx t =
  match t.retx_timer with
  | Some h ->
      Sim.cancel h;
      t.retx_timer <- None
  | None -> ()

let data_end t = Bytebuf.tail t.sndbuf
let send_limit t = if t.fin_queued then t.fin_seq + 1 else data_end t
let flight t = t.snd_nxt - t.snd_una

(* Directed flow keys for the flight recorder: the sender reports pending
   (unacked) bytes under its own address first; the receiver reports
   deliveries under the mirrored key. *)
let flow_key t =
  Printf.sprintf "tcp.%d:%d->%d:%d"
    (Ipv4.addr t.stack.s_ip)
    t.lport t.raddr t.rport

let rev_flow_key t =
  Printf.sprintf "tcp.%d:%d->%d:%d" t.raddr t.rport
    (Ipv4.addr t.stack.s_ip)
    t.lport

let report_flight t =
  if Recorder.armed () then
    Recorder.sender_pending ~key:(flow_key t) (flight t)

(* Per-connection resource probes; sampled only while a timeseries
   collection is running. *)
let watch_conn t =
  let labels =
    [
      ("host", string_of_int (Ipv4.addr t.stack.s_ip));
      ("lport", string_of_int t.lport);
      ("rport", string_of_int t.rport);
    ]
  in
  Timeseries.register "tcp_cwnd" labels (fun () -> float_of_int t.cwnd);
  Timeseries.register "tcp_flight" labels (fun () -> float_of_int (flight t));
  Timeseries.register "tcp_rto_ns" labels (fun () -> float_of_int t.rto)

(* --- transmission pump, timers ------------------------------------ *)

let rec arm_retx t =
  if t.retx_timer = None then
    t.retx_timer <-
      Some
        (Sim.schedule ~label:"tcp.rto" (sim_of t)
           ~delay:(round_to_granularity t t.rto)
           (fun () ->
             t.retx_timer <- None;
             on_retx_timeout t))

and note_rto t =
  Metrics.Counter.inc m_rto;
  Metrics.Counter.inc m_retx;
  if Trace.enabled () then
    Trace.instant Trace.Tcp "tcp.rto"
      ~args:[ ("port", Trace.Int t.lport); ("rto_ns", Trace.Int t.rto) ]

and on_retx_timeout t =
  match t.st with
  | Syn_sent ->
      t.n_retx <- t.n_retx + 1;
      note_rto t;
      t.rto <- min t.cfg.max_rto (t.rto * 2);
      emit t ~flags:f_syn ~seq:0 ~payload:Bytes.empty;
      arm_retx t
  | Syn_rcvd ->
      t.n_retx <- t.n_retx + 1;
      note_rto t;
      t.rto <- min t.cfg.max_rto (t.rto * 2);
      emit t ~flags:(f_syn lor f_ack) ~seq:0 ~payload:Bytes.empty;
      arm_retx t
  | Closed | Listen | Time_wait -> ()
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
    ->
      if flight t > 0 then begin
        (* timeout: back off, collapse to slow start, go back N *)
        Log.debug (fun m ->
            m "port %d: retransmission timeout (rto=%d ns, flight=%d)"
              t.lport t.rto (flight t));
        t.n_timeouts <- t.n_timeouts + 1;
        t.n_retx <- t.n_retx + 1;
        note_rto t;
        t.rto <- min t.cfg.max_rto (t.rto * 2);
        t.ssthresh <- max (2 * t.cfg.mss) (flight t / 2);
        t.cwnd <- t.cfg.mss;
        t.dup_acks <- 0;
        t.timing <- None;
        t.snd_nxt <- t.snd_una;
        pump t;
        arm_retx t
      end
      else if Bytebuf.length t.sndbuf > 0 && t.rwnd = 0 then begin
        (* persist: probe the zero window with one byte *)
        t.n_retx <- t.n_retx + 1;
        note_rto t;
        let payload =
          Bytebuf.read t.sndbuf ~layer:"tcp_sndbuf" ~abs:t.snd_una ~len:1
        in
        emit t ~flags:f_ack ~seq:t.snd_una ~payload;
        t.rto <- min t.cfg.max_rto (t.rto * 2);
        arm_retx t
      end

and pump t =
  match t.st with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
      let continue = ref true in
      while !continue do
        let window = min t.cwnd t.rwnd in
        let usable = window - flight t in
        if t.snd_nxt >= send_limit t then continue := false
        else if t.snd_nxt = t.fin_seq && t.fin_queued then begin
          (* bare FIN: doesn't consume window space *)
          emit t ~flags:(f_fin lor f_ack) ~seq:t.snd_nxt ~payload:Bytes.empty;
          t.snd_nxt <- t.snd_nxt + 1;
          arm_retx t
        end
        else if usable <= 0 then continue := false
        else begin
          let data_len =
            min (min t.cfg.mss usable) (data_end t - t.snd_nxt)
          in
          if data_len <= 0 then continue := false
          else begin
            let payload =
              Bytebuf.read t.sndbuf ~layer:"tcp_sndbuf" ~abs:t.snd_nxt
                ~len:data_len
            in
            let fin_now = t.fin_queued && t.snd_nxt + data_len = t.fin_seq in
            let flags = if fin_now then f_fin lor f_ack else f_ack in
            if t.timing = None then
              t.timing <- Some (t.snd_nxt + data_len, Sim.now (sim_of t));
            emit t ~flags ~seq:t.snd_nxt ~payload;
            t.n_bytes_sent <- t.n_bytes_sent + data_len;
            t.snd_nxt <- t.snd_nxt + data_len + (if fin_now then 1 else 0);
            arm_retx t
          end
        end
      done;
      report_flight t
  | _ -> ()

(* --- acknowledgment policy ----------------------------------------- *)

let send_ack t = emit t ~flags:f_ack ~seq:t.snd_nxt ~payload:Bytes.empty

let schedule_ack t =
  if not t.cfg.delayed_ack then send_ack t
  else begin
    t.segs_since_ack <- t.segs_since_ack + 1;
    if t.segs_since_ack >= 2 then send_ack t
    else if t.delack_timer = None then
      t.delack_timer <-
        Some
          (Sim.schedule ~label:"tcp.delack" (sim_of t)
             ~delay:t.cfg.delack_timeout (fun () ->
               t.delack_timer <- None;
               send_ack t))
  end

(* --- input processing ----------------------------------------------- *)

let update_rtt t sample_ns =
  let s = float_of_int sample_ns in
  if t.srtt = 0. then begin
    t.srtt <- s;
    t.rttvar <- s /. 2.
  end
  else begin
    let err = s -. t.srtt in
    t.srtt <- t.srtt +. (0.125 *. err);
    t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
  end;
  let rto = int_of_float (t.srtt +. (4. *. t.rttvar)) in
  t.rto <- max t.cfg.granularity (min t.cfg.max_rto rto)

let fin_acked t = t.fin_queued && t.snd_una > t.fin_seq

let on_fin_acked t =
  match t.st with
  | Fin_wait_1 -> t.st <- Fin_wait_2
  | Closing -> t.st <- Time_wait
  | Last_ack -> t.st <- Closed
  | _ -> ()

let retransmit_one t =
  (* fast retransmit: resend the segment at snd_una *)
  let data_len = min t.cfg.mss (data_end t - t.snd_una) in
  if data_len > 0 then begin
    let payload =
      Bytebuf.read t.sndbuf ~layer:"tcp_sndbuf" ~abs:t.snd_una ~len:data_len
    in
    let fin_now = t.fin_queued && t.snd_una + data_len = t.fin_seq in
    emit t
      ~flags:(if fin_now then f_fin lor f_ack else f_ack)
      ~seq:t.snd_una ~payload
  end
  else if t.fin_queued && t.snd_una = t.fin_seq then
    emit t ~flags:(f_fin lor f_ack) ~seq:t.snd_una ~payload:Bytes.empty

let process_ack t ack =
  if ack > t.snd_una then begin
    let data_ack = min ack (data_end t) in
    if data_ack > Bytebuf.base t.sndbuf then
      Bytebuf.advance t.sndbuf (data_ack - Bytebuf.base t.sndbuf);
    t.snd_una <- ack;
    if t.snd_nxt < t.snd_una then t.snd_nxt <- t.snd_una;
    if Hashtbl.length t.seg_ctx > 0 then
      Hashtbl.filter_map_inplace
        (fun seq ctx -> if seq < t.snd_una then None else Some ctx)
        t.seg_ctx;
    t.dup_acks <- 0;
    (match t.timing with
    | Some (seq, sent_at) when ack >= seq ->
        update_rtt t (Sim.now (sim_of t) - sent_at);
        t.timing <- None
    | _ -> ());
    (* congestion window growth *)
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + t.cfg.mss
    else t.cwnd <- t.cwnd + max 1 (t.cfg.mss * t.cfg.mss / t.cwnd);
    Metrics.Histogram.observe m_cwnd (float_of_int t.cwnd);
    cancel_retx t;
    if flight t > 0 then arm_retx t
    else if Bytebuf.length t.sndbuf > 0 && t.rwnd = 0 then
      (* everything acked but the peer closed its window: arm the persist
         timer so a lost window update cannot deadlock the connection *)
      arm_retx t;
    if fin_acked t then on_fin_acked t;
    Sync.Condition.broadcast t.cond;
    pump t
  end
  else if ack = t.snd_una && flight t > 0 then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 then begin
      t.n_fast_retx <- t.n_fast_retx + 1;
      t.n_retx <- t.n_retx + 1;
      Metrics.Counter.inc m_fast;
      Metrics.Counter.inc m_retx;
      if Trace.enabled () then
        Trace.instant Trace.Tcp "tcp.fast_retx"
          ~args:[ ("port", Trace.Int t.lport) ];
      t.ssthresh <- max (2 * t.cfg.mss) (flight t / 2);
      t.cwnd <- t.ssthresh;
      t.timing <- None;
      retransmit_one t
    end
  end

let rec drain_ooo t =
  match t.ooo with
  | (seq, data, fin) :: rest when seq <= t.rcv_nxt ->
      t.ooo <- rest;
      let skip = t.rcv_nxt - seq in
      if skip <= Buf.length data then begin
        let fresh = Buf.length data - skip in
        let n = Bytebuf.append t.rcvbuf ~layer:"tcp_rcvbuf" data skip fresh in
        t.rcv_nxt <- t.rcv_nxt + n;
        t.n_bytes_rcvd <- t.n_bytes_rcvd + n;
        if n = fresh && fin then begin
          t.fin_rcvd <- true;
          t.rcv_nxt <- t.rcv_nxt + 1
        end
      end;
      drain_ooo t
  | _ -> ()

let on_fin_received t =
  match t.st with
  | Established -> t.st <- Close_wait
  | Fin_wait_1 -> t.st <- if fin_acked t then Time_wait else Closing
  | Fin_wait_2 -> t.st <- Time_wait
  | _ -> ()

let insert_ooo t seq data fin =
  let rec ins = function
    | [] -> [ (seq, data, fin) ]
    | (s, _, _) :: _ as l when seq < s -> (seq, data, fin) :: l
    | (s, _, _) :: _ as l when seq = s -> l (* duplicate *)
    | x :: rest -> x :: ins rest
  in
  if List.length t.ooo < 64 then t.ooo <- ins t.ooo

let process_data t ~seq ~payload ~fin =
  let len = Buf.length payload in
  if len = 0 && not fin then ()
  else if seq = t.rcv_nxt then begin
    let n = Bytebuf.append t.rcvbuf ~layer:"tcp_rcvbuf" payload 0 len in
    t.rcv_nxt <- t.rcv_nxt + n;
    t.n_bytes_rcvd <- t.n_bytes_rcvd + n;
    if n = len && fin then begin
      t.fin_rcvd <- true;
      t.rcv_nxt <- t.rcv_nxt + 1;
      on_fin_received t
    end;
    drain_ooo t;
    if t.fin_rcvd then on_fin_received t;
    Sync.Condition.broadcast t.cond;
    if fin || t.fin_rcvd then send_ack t else schedule_ack t
  end
  else if seq > t.rcv_nxt then begin
    (* out of order: buffer within reason and duplicate-ack immediately *)
    insert_ooo t seq payload fin;
    send_ack t
  end
  else begin
    (* old duplicate (e.g. after our ack was lost): re-ack *)
    let fresh_from = t.rcv_nxt - seq in
    if fresh_from < len then begin
      let n =
        Bytebuf.append t.rcvbuf ~layer:"tcp_rcvbuf" payload fresh_from
          (len - fresh_from)
      in
      t.rcv_nxt <- t.rcv_nxt + n;
      t.n_bytes_rcvd <- t.n_bytes_rcvd + n;
      if n = len - fresh_from && fin then begin
        t.fin_rcvd <- true;
        t.rcv_nxt <- t.rcv_nxt + 1;
        on_fin_received t
      end;
      drain_ooo t;
      Sync.Condition.broadcast t.cond
    end;
    send_ack t
  end

(* --- connection setup ------------------------------------------------ *)

let mk_conn stack ~lport ~raddr ~rport ~st =
  {
    stack;
    cfg = stack.s_cfg;
    lport;
    rport;
    raddr;
    cond = Sync.Condition.create (Ipv4.sim stack.s_ip);
    st;
    sndbuf = Bytebuf.create stack.s_cfg.sndbuf;
    snd_una = 0;
    snd_nxt = 1;
    fin_queued = false;
    fin_seq = max_int;
    cwnd = 2 * stack.s_cfg.mss;
    ssthresh = 0xffff * 4;
    rwnd = stack.s_cfg.mss;
    dup_acks = 0;
    srtt = 0.;
    rttvar = 0.;
    rto = stack.s_cfg.initial_rto;
    timing = None;
    rcvbuf = Bytebuf.create stack.s_cfg.rcvbuf;
    rcv_nxt = 0;
    ooo = [];
    fin_rcvd = false;
    segs_since_ack = 0;
    retx_timer = None;
    delack_timer = None;
    n_retx = 0;
    n_fast_retx = 0;
    n_timeouts = 0;
    n_bytes_sent = 0;
    n_bytes_rcvd = 0;
    seg_ctx = Hashtbl.create 8;
  }

let conn_key t = (t.lport, t.raddr, t.rport)

let establish_buffers t =
  Bytebuf.set_base t.sndbuf 1;
  Bytebuf.set_base t.rcvbuf 1;
  t.rcv_nxt <- 1

let conn_input t ~flags ~seq ~ack_no ~window ~payload =
  (* any arrival on the connection proves the remote->local direction
     alive, which exonerates it from the stall watchdog *)
  if Recorder.armed () then Recorder.flow_delivered ~key:(rev_flow_key t);
  t.rwnd <- window;
  let syn = flags land f_syn <> 0 in
  let ackf = flags land f_ack <> 0 in
  let fin = flags land f_fin <> 0 in
  match t.st with
  | Syn_sent when syn && ackf && ack_no >= 1 ->
      establish_buffers t;
      t.snd_una <- 1;
      t.st <- Established;
      send_ack t;
      Sync.Condition.broadcast t.cond
  | Syn_sent -> ()
  | Syn_rcvd ->
      if syn then (* duplicate SYN: re-send SYN+ACK *)
        emit t ~flags:(f_syn lor f_ack) ~seq:0 ~payload:Bytes.empty
      else if ackf && ack_no >= 1 then begin
        t.snd_una <- max t.snd_una 1;
        t.st <- Established;
        cancel_retx t;
        (match Hashtbl.find_opt t.stack.s_listeners t.lport with
        | Some l ->
            Queue.add t l.l_accepted;
            Sync.Condition.broadcast l.l_cond
        | None -> ());
        (* the ack may carry data *)
        if Buf.length payload > 0 || fin then
          process_data t ~seq ~payload ~fin;
        Sync.Condition.broadcast t.cond
      end
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
  | Time_wait ->
      if syn then
        (* duplicate handshake segment (our ack was lost): re-ack *)
        send_ack t
      else begin
        if ackf then process_ack t ack_no;
        process_data t ~seq ~payload ~fin;
        (* a bare window update (duplicate ack number, larger window) must
           restart transmission even though it acknowledges nothing new *)
        pump t
      end
  | Closed | Listen -> ()

(* --- stack / demux --------------------------------------------------- *)

let attach ipv4 cfg =
  let stack =
    {
      s_ip = ipv4;
      s_cfg = cfg;
      s_conns = Hashtbl.create 16;
      s_listeners = Hashtbl.create 4;
      s_next_port = 32_768;
    }
  in
  let rx_cost payload =
    cfg.recv_cost (max 0 (Buf.length payload - header_size))
  in
  let rx ~src payload =
    if Buf.length payload < header_size then ()
    else if not (Checksum.verify_buf payload) then ()
    else begin
      let sport = Buf.get_uint16_be payload 0 in
      let dport = Buf.get_uint16_be payload 2 in
      let seq = Int32.to_int (Buf.get_uint32_be payload 4) in
      let ack_no = Int32.to_int (Buf.get_uint32_be payload 8) in
      let flags = Buf.get_uint8 payload 13 in
      let window = Buf.get_uint16_be payload 14 in
      let data =
        Buf.sub payload ~pos:header_size
          ~len:(Buf.length payload - header_size)
      in
      match Hashtbl.find_opt stack.s_conns (dport, src, sport) with
      | Some conn ->
          conn_input conn ~flags ~seq ~ack_no ~window ~payload:data
      | None -> (
          match Hashtbl.find_opt stack.s_listeners dport with
          | Some _ when flags land f_syn <> 0 && flags land f_ack = 0 ->
              let conn =
                mk_conn stack ~lport:dport ~raddr:src ~rport:sport
                  ~st:Syn_rcvd
              in
              establish_buffers conn;
              conn.rwnd <- window;
              Hashtbl.replace stack.s_conns (conn_key conn) conn;
              watch_conn conn;
              emit conn ~flags:(f_syn lor f_ack) ~seq:0 ~payload:Bytes.empty;
              arm_retx conn
          | _ -> ())
    end
  in
  Ipv4.register ipv4 Ipv4.Tcp ~rx_cost_ns:rx_cost rx;
  stack

let listen stack ~port =
  if Hashtbl.mem stack.s_listeners port then
    Fmt.invalid_arg "Tcp.listen: port %d taken" port;
  let l =
    {
      l_port = port;
      l_stack = stack;
      l_accepted = Queue.create ();
      l_cond = Sync.Condition.create (Ipv4.sim stack.s_ip);
    }
  in
  Hashtbl.replace stack.s_listeners port l;
  l

let accept l =
  let rec loop () =
    match Queue.take_opt l.l_accepted with
    | Some c -> c
    | None ->
        Sync.Condition.wait l.l_cond;
        loop ()
  in
  loop ()

let connect stack ~dst ~dst_port ?src_port () =
  let lport =
    match src_port with
    | Some p -> p
    | None ->
        let p = stack.s_next_port in
        stack.s_next_port <- stack.s_next_port + 1;
        p
  in
  let t = mk_conn stack ~lport ~raddr:dst ~rport:dst_port ~st:Syn_sent in
  Hashtbl.replace stack.s_conns (conn_key t) t;
  watch_conn t;
  emit t ~flags:f_syn ~seq:0 ~payload:Bytes.empty;
  arm_retx t;
  Sync.Condition.wait_for t.cond (fun () -> t.st = Established);
  t

(* --- application interface ------------------------------------------- *)

let send t data =
  (match t.st with
  | Established | Close_wait -> ()
  | st -> Fmt.invalid_arg "Tcp.send in state %a" pp_state st);
  let len = Bytes.length data in
  let src = Buf.of_bytes data in
  let pos = ref 0 in
  while !pos < len do
    let n = Bytebuf.append t.sndbuf ~layer:"tcp_app" src !pos (len - !pos) in
    pos := !pos + n;
    pump t;
    if !pos < len then
      (* send buffer full: wait for acknowledgments to free space *)
      Sync.Condition.wait_for t.cond (fun () ->
          Bytebuf.space t.sndbuf > 0 || t.st = Closed)
  done

let at_eof t = t.fin_rcvd && Bytebuf.length t.rcvbuf = 0

let recv t ~max =
  Sync.Condition.wait_for t.cond (fun () ->
      Bytebuf.length t.rcvbuf > 0 || at_eof t || t.st = Closed);
  let n = min max (Bytebuf.length t.rcvbuf) in
  if n = 0 then Bytes.empty (* EOF *)
  else begin
    let low_window_before = Bytebuf.space t.rcvbuf < t.cfg.mss in
    let out =
      Bytebuf.read t.rcvbuf ~layer:"tcp_app" ~abs:(Bytebuf.base t.rcvbuf)
        ~len:n
    in
    Bytebuf.advance t.rcvbuf n;
    (* window update once the application frees significant space *)
    if low_window_before && Bytebuf.space t.rcvbuf >= t.cfg.mss then
      send_ack t;
    out
  end

let recv_exact t ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let chunk = recv t ~max:(len - !pos) in
    if Bytes.length chunk = 0 then raise End_of_file;
    Bytes.blit chunk 0 out !pos (Bytes.length chunk);
    pos := !pos + Bytes.length chunk
  done;
  out

let close t =
  if not t.fin_queued then begin
    t.fin_queued <- true;
    t.fin_seq <- data_end t;
    (match t.st with
    | Established -> t.st <- Fin_wait_1
    | Close_wait -> t.st <- Last_ack
    | _ -> ());
    pump t
  end
