open Engine

type job = Tx of int * Span.ctx option * Buf.t | Deliver of Buf.t

type t = {
  sim : Sim.t;
  cpu : Host.Cpu.t;
  mtu : int;
  mbox : job Sync.Mailbox.t;
  tx_queue_limit : int;
  mutable rx_handler : Buf.t -> unit;
  mutable rx_cost : Buf.t -> int;
  mutable transmit : Span.ctx option -> Buf.t -> unit;
      (* set once the pair is wired *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let sim t = t.sim
let cpu t = t.cpu
let mtu t = t.mtu
let packets_sent t = t.sent
let packets_delivered t = t.delivered
let tx_drops t = t.dropped
let queue_length t = Sync.Mailbox.length t.mbox
let queue_limit t = t.tx_queue_limit

let send t ?ctx ~cost_ns pkt =
  if Buf.length pkt > t.mtu then
    Fmt.invalid_arg "Iface.send: packet of %d bytes exceeds MTU %d"
      (Buf.length pkt) t.mtu;
  (* the SunOS behaviour of §7.4: the device transmit queue silently drops
     packets under overload, without telling the sending application *)
  if Sync.Mailbox.length t.mbox >= t.tx_queue_limit then
    t.dropped <- t.dropped + 1
  else Sync.Mailbox.send t.mbox (Tx (cost_ns, ctx, pkt))

let set_rx t ~rx_cost_ns handler =
  t.rx_cost <- rx_cost_ns;
  t.rx_handler <- handler

let deliver t pkt = Sync.Mailbox.send t.mbox (Deliver pkt)

(* The stack process: serializes all protocol processing on this host and
   charges its cost to the CPU. *)
let start_stack t =
  ignore
    (Proc.spawn ~name:"ipstack" t.sim (fun () ->
         (* protocol costs are charged here, not at the Iface.send call
            site, so the profile frames that split tx from rx must wrap
            the charges in this process *)
         let host = Host.Cpu.host t.cpu in
         let rec loop () =
           (match Sync.Mailbox.recv t.mbox with
           | Tx (cost, ctx, pkt) ->
               Profile.push ~host "iface.tx";
               Host.Cpu.charge ~layer:"ipstack" t.cpu cost;
               t.sent <- t.sent + 1;
               t.transmit ctx pkt;
               Profile.pop ~host ()
           | Deliver pkt ->
               Profile.push ~host "iface.rx";
               Host.Cpu.charge ~layer:"ipstack" t.cpu (t.rx_cost pkt);
               t.delivered <- t.delivered + 1;
               t.rx_handler pkt;
               Profile.pop ~host ());
           loop ()
         in
         loop ()))

let make ~sim ~cpu ~mtu ~tx_queue =
  let t =
    {
      sim;
      cpu;
      mtu;
      mbox = Sync.Mailbox.create sim;
      tx_queue_limit = tx_queue;
      rx_handler = (fun _ -> ());
      rx_cost = (fun _ -> 0);
      transmit = (fun _ _ -> failwith "Iface: not wired");
      sent = 0;
      delivered = 0;
      dropped = 0;
    }
  in
  start_stack t;
  t

(* ------------------------------------------------------------------ *)
(* IP over U-Net (§7.1): one U-Net channel carries all the IP traffic
   between the two stacks, with no LLC/SNAP encapsulation (the paper notes
   its multiplexor cannot yet share a VCI as RFC 1577 classical IP-over-ATM
   requires) — so 40-byte TCP acks ride the single-cell fast path (§7.8).
   The kernel-ATM baseline, by contrast, uses the standard 8-byte LLC/SNAP
   header. *)

let llc_snap = Bytes.of_string "\xAA\xAA\x03\x00\x00\x00\x08\x00"
let llc_snap_buf = Buf.of_bytes llc_snap
let encap_size = 8
let ip_buffer_count = 32

(* prepending the encapsulation is pure slice concatenation *)
let encapsulate pkt = Buf.append llc_snap_buf pkt

let decapsulate frame =
  if
    Buf.length frame < encap_size
    || not (Buf.equal_bytes (Buf.sub frame ~pos:0 ~len:encap_size) llc_snap)
  then None
  else
    Some (Buf.sub frame ~pos:encap_size ~len:(Buf.length frame - encap_size))

let unet_side u ~mtu =
  let block = mtu + 64 in
  let seg_size = 2 * ip_buffer_count * block in
  let ep =
    match
      Unet.create_endpoint u ~tx_slots:128 ~rx_slots:128
        ~free_slots:(ip_buffer_count + 1) ~seg_size ()
    with
    | Ok ep -> ep
    | Error e -> Fmt.invalid_arg "Iface.unet_pair: %a" Unet.pp_error e
  in
  let alloc = Unet.Segment.Allocator.create ep.segment ~block in
  for _ = 1 to ip_buffer_count do
    match Unet.Segment.Allocator.alloc alloc with
    | Some (off, len) ->
        (match Unet.provide_free_buffer u ep ~off ~len with
        | Ok () -> ()
        | Error e -> Fmt.invalid_arg "Iface.unet_pair: %a" Unet.pp_error e)
    | None -> assert false
  done;
  (ep, alloc)

let unet_transmit u (ep : Unet.Endpoint.t) alloc ~chan in_flight ~encap ?ctx
    raw_pkt =
  let pkt = if encap then encapsulate raw_pkt else raw_pkt in
  (* reclaim transmit buffers whose descriptors the NI has consumed *)
  let rec reap () =
    match Queue.peek_opt in_flight with
    | Some ((desc : Unet.Desc.tx), buf) when desc.injected ->
        ignore (Queue.pop in_flight);
        Unet.Segment.Allocator.free alloc buf;
        reap ()
    | _ -> ()
  in
  reap ();
  (* IP packets always stage through communication-segment buffers (no
     single-cell fast path: headers make even tiny datagrams multi-cell,
     which is why U-Net UDP starts at 138 µs over the 120 µs base). *)
  begin
    let rec alloc_buf () =
      reap ();
      match Unet.Segment.Allocator.alloc alloc with
      | Some b -> b
      | None ->
          (* all buffers still queued in the NI: wait for the doorbell *)
          Proc.sleep (Unet.sim u) ~time:(Sim.us 5);
          alloc_buf ()
    in
    let off, _blen = alloc_buf () in
    (* stage the packet into the communication segment: the one mandatory
       send-side copy of IP-over-U-Net *)
    Unet.Segment.write_buf ~layer:"ip_tx" ep.segment ~off pkt;
    let desc =
      Unet.Desc.tx ?ctx ~chan (Unet.Desc.Buffers [ (off, Buf.length pkt) ])
    in
    match Unet.send u ep desc with
    | Ok () -> Queue.add (desc, (off, _blen)) in_flight
    | Error Unet.Queue_full ->
        Unet.Segment.Allocator.free alloc (off, _blen)
    | Error e -> Fmt.failwith "Iface: U-Net send: %a" Unet.pp_error e
  end

let start_unet_poller t u (ep : Unet.Endpoint.t) alloc ~encap =
  ignore
    (Proc.spawn ~name:"ip-poller" t.sim (fun () ->
         let rec loop () =
           let rx = Unet.recv u ep in
           let pkt =
             match rx.Unet.Desc.rx_payload with
             | Unet.Desc.Inline b -> b (* snapshot owned by the descriptor *)
             | Unet.Desc.Buffers bufs ->
                 (* materialize before the buffers go back on the free
                    queue: the NI may refill them at any point after *)
                 let pkt =
                   Buf.copy ~layer:"ip_rx"
                     (Buf.concat
                        (List.map
                           (fun (off, len) ->
                             Unet.Segment.view ep.segment ~off ~len)
                           bufs))
                 in
                 List.iter
                   (fun (off, _len) ->
                     match
                       Unet.provide_free_buffer u ep ~off
                         ~len:(Unet.Segment.Allocator.block_size alloc)
                     with
                     | Ok () -> ()
                     | Error e ->
                         Fmt.failwith "Iface: free return: %a" Unet.pp_error e)
                   bufs;
                 pkt
           in
           (if encap then
              match decapsulate pkt with
              | Some ip_pkt -> deliver t ip_pkt
              | None -> () (* not LLC/SNAP IP: discarded *)
            else deliver t pkt);
           loop ()
         in
         loop ()))

let unet_pair ?(mtu = 9_000) ?(tx_queue = 64) ?(encapsulation = false) ua ub =
  let encap = encapsulation in
  let ta = make ~sim:(Unet.sim ua) ~cpu:(Unet.cpu ua) ~mtu ~tx_queue in
  let tb = make ~sim:(Unet.sim ub) ~cpu:(Unet.cpu ub) ~mtu ~tx_queue in
  let ep_a, alloc_a = unet_side ua ~mtu in
  let ep_b, alloc_b = unet_side ub ~mtu in
  let ch_a, ch_b = Unet.connect_pair (ua, ep_a) (ub, ep_b) in
  let fl_a = Queue.create () and fl_b = Queue.create () in
  ta.transmit <-
    (fun ctx pkt -> unet_transmit ua ep_a alloc_a ~chan:ch_a fl_a ~encap ?ctx pkt);
  tb.transmit <-
    (fun ctx pkt -> unet_transmit ub ep_b alloc_b ~chan:ch_b fl_b ~encap ?ctx pkt);
  start_unet_poller ta ua ep_a alloc_a ~encap;
  start_unet_poller tb ub ep_b alloc_b ~encap;
  (ta, tb)

(* ------------------------------------------------------------------ *)
(* A framed point-to-point byte link (Ethernet baseline). Packets larger
   than the wire MTU are fragmented; the ordered link lets the receiver
   reassemble sequentially. Frame format: [u32 pkt_len][u32 offset][data]. *)

type frame_link = {
  fl_sim : Sim.t;
  fl_frame_ns_per_byte : float;
  fl_propagation : Sim.time;
  mutable fl_busy_until : Sim.time;
  mutable fl_rx : Buf.t -> unit;
}

let frame_header = 8

(* pcap tap for the framed (Ethernet-baseline) link: each frame is
   captured with a synthetic 14-byte Ethernet header (zero MACs, a
   local-experimental ethertype) so Wireshark renders the capture. Bytes
   are materialized with the uncounted span iterator — captures must not
   perturb the copy accounting. *)
let capture_frame frame =
  if Pcapng.enabled () then begin
    let ifc = Pcapng.iface ~name:"eth0" ~linktype:Pcapng.linktype_ethernet in
    let b = Bytes.make (14 + Buf.length frame) '\000' in
    Bytes.set_uint16_be b 12 0x88B5;
    let pos = ref 14 in
    Buf.iter_spans frame (fun src ~pos:sp ~len ->
        Bytes.blit src sp b !pos len;
        pos := !pos + len);
    Pcapng.capture ~iface:ifc (Bytes.unsafe_to_string b)
  end

let link_transmit fl frame =
  capture_frame frame;
  let now = Sim.now fl.fl_sim in
  let start = max now fl.fl_busy_until in
  let ser =
    int_of_float
      (Float.round (float_of_int (Buf.length frame) *. fl.fl_frame_ns_per_byte))
  in
  fl.fl_busy_until <- start + ser;
  ignore
    (Sim.schedule_at ~label:"iface.rx" fl.fl_sim
       (fl.fl_busy_until + fl.fl_propagation)
       (fun () -> fl.fl_rx frame))

type reasm = { mutable r_buf : bytes; mutable r_got : int }

let framed_pair ~sim ~cpu_a ~cpu_b ~bandwidth_mbps ~wire_mtu ~per_frame_ns
    ~propagation ?(tx_queue = 64) ?(ip_mtu = 9_000) () =
  let ns_per_byte = 8_000. /. bandwidth_mbps in
  let mk_link () =
    {
      fl_sim = sim;
      fl_frame_ns_per_byte = ns_per_byte;
      fl_propagation = propagation;
      fl_busy_until = 0;
      fl_rx = (fun _ -> ());
    }
  in
  let l_ab = mk_link () and l_ba = mk_link () in
  let ta = make ~sim ~cpu:cpu_a ~mtu:ip_mtu ~tx_queue in
  let tb = make ~sim ~cpu:cpu_b ~mtu:ip_mtu ~tx_queue in
  let mk_transmit cpu link _ctx pkt =
    (* fragment into wire-MTU frames, charging the driver per frame; each
       frame is a header plus a zero-copy slice of the packet (transports
       hand the interface packets they no longer mutate) *)
    let len = Buf.length pkt in
    let payload_max = wire_mtu - frame_header in
    let rec go off =
      if off < len then begin
        let flen = min payload_max (len - off) in
        let hdr = Bytes.create frame_header in
        Bytes.set_int32_be hdr 0 (Int32.of_int len);
        Bytes.set_int32_be hdr 4 (Int32.of_int off);
        let frame = Buf.append (Buf.of_bytes hdr) (Buf.sub pkt ~pos:off ~len:flen) in
        Host.Cpu.charge cpu per_frame_ns;
        link_transmit link frame;
        go (off + flen)
      end
    in
    go 0
  in
  let mk_rx t =
    let r = { r_buf = Bytes.empty; r_got = 0 } in
    fun frame ->
      let total = Int32.to_int (Buf.get_uint32_be frame 0) in
      let off = Int32.to_int (Buf.get_uint32_be frame 4) in
      let flen = Buf.length frame - frame_header in
      if off = 0 then begin
        r.r_buf <- Bytes.create total;
        r.r_got <- 0
      end;
      if Bytes.length r.r_buf = total then begin
        (* the driver's receive-side copy out of the device frame *)
        Buf.copy_into ~layer:"ether_rx"
          (Buf.sub frame ~pos:frame_header ~len:flen)
          ~dst:r.r_buf ~dst_pos:off;
        r.r_got <- r.r_got + flen;
        if r.r_got >= total then begin
          deliver t (Buf.of_bytes r.r_buf);
          r.r_buf <- Bytes.empty;
          r.r_got <- 0
        end
      end
  in
  ta.transmit <- mk_transmit cpu_a l_ab;
  tb.transmit <- mk_transmit cpu_b l_ba;
  l_ab.fl_rx <- mk_rx tb;
  l_ba.fl_rx <- mk_rx ta;
  (ta, tb)
