open Engine

let header_size = 8

type costs = {
  app_send_ns : int -> int;
  stack_send_ns : int -> int;
  stack_recv_ns : int -> int;
  app_recv_ns : int -> int;
  backpressure : bool;
}

(* §7.6: checksum is ~1 µs/100 B and can be combined with the copy; the
   fixed part covers header construction, the pcb-cache lookup and buffer
   management in the user-level library, all of which run in the
   application's own process. *)
let unet_costs =
  {
    app_send_ns = (fun _ -> 4_000);
    stack_send_ns = (fun _ -> 500);
    stack_recv_ns = (fun _ -> 1_000);
    app_recv_ns = (fun _ -> 3_500);
    backpressure = true;
  }

(* The kernel path splits per the real division of labour: socket layer and
   user/kernel copy in the system call, mbuf + protocol + driver work in the
   kernel's network processing. *)
let kernel_costs kcfg =
  let copy len =
    int_of_float
      (Float.round (float_of_int len *. kcfg.Host.Kernel.copy_ns_per_byte))
  in
  {
    app_send_ns =
      (fun len -> kcfg.Host.Kernel.socket_layer_ns + copy len);
    stack_send_ns =
      (fun len ->
        Host.Mbuf.handling_cost kcfg.Host.Kernel.mbuf len
        + kcfg.Host.Kernel.udp_ns + kcfg.Host.Kernel.driver_ns);
    stack_recv_ns =
      (fun len ->
        kcfg.Host.Kernel.driver_ns
        + Host.Mbuf.handling_cost kcfg.Host.Kernel.mbuf len
        + kcfg.Host.Kernel.udp_ns);
    app_recv_ns =
      (fun len -> kcfg.Host.Kernel.socket_layer_ns + copy len);
    backpressure = false;
  }

type socket = {
  s_port : int;
  s_stack : stack;
  s_queue : (int * int * Buf.t) Queue.t;
      (* queued datagrams are views of delivered packets, which own their
         storage (see Iface) — retaining them until recvfrom is safe *)
  s_cond : Sync.Condition.t;
  s_sockbuf : Host.Kernel.Sockbuf.t option;
  mutable s_open : bool;
}

and stack = {
  ip : Ipv4.t;
  checksum : bool;
  sockbuf_limit : int option;
  costs : costs;
  ports : (int, socket) Hashtbl.t;
  mutable csum_failures : int;
  mutable sent : int;
  mutable delivered : int;
  (* pcb cache (§7.6): the last destination port resolved *)
  mutable pcb_cache : socket option;
}

let ip t = t.ip

let checksum_cost t len = if t.checksum then Checksum.cost_ns len else 0

let lookup t port =
  match t.pcb_cache with
  | Some s when s.s_port = port && s.s_open -> Some s
  | _ ->
      let r = Hashtbl.find_opt t.ports port in
      (match r with Some s when s.s_open -> t.pcb_cache <- r | _ -> ());
      r

let attach ?(checksum = true) ?sockbuf_limit ~costs ip =
  let t =
    {
      ip;
      checksum;
      sockbuf_limit;
      costs;
      ports = Hashtbl.create 16;
      csum_failures = 0;
      sent = 0;
      delivered = 0;
      pcb_cache = None;
    }
  in
  let rx_cost payload =
    t.costs.stack_recv_ns (Buf.length payload)
    + checksum_cost t (Buf.length payload)
  in
  let rx ~src payload =
    if Buf.length payload < header_size then
      t.csum_failures <- t.csum_failures + 1
    else begin
      let sport = Buf.get_uint16_be payload 0 in
      let dport = Buf.get_uint16_be payload 2 in
      let ok =
        (not t.checksum)
        || Buf.get_uint16_be payload 6 = 0 (* sender had checksum off *)
        || Checksum.verify_buf payload
      in
      if not ok then t.csum_failures <- t.csum_failures + 1
      else
        match lookup t dport with
        | None -> () (* no listener: silently dropped (no ICMP, §7.1) *)
        | Some s ->
            let data =
              Buf.sub payload ~pos:header_size
                ~len:(Buf.length payload - header_size)
            in
            let accept =
              match s.s_sockbuf with
              | Some sb -> Host.Kernel.Sockbuf.offer sb (Buf.length data)
              | None -> true
            in
            if accept then begin
              Queue.add (src, sport, data) s.s_queue;
              t.delivered <- t.delivered + 1;
              Sync.Condition.broadcast s.s_cond
            end
    end
  in
  Ipv4.register ip Ipv4.Udp ~rx_cost_ns:rx_cost rx;
  t

let socket t ~port =
  if Hashtbl.mem t.ports port then Fmt.invalid_arg "Udp.socket: port %d taken" port;
  let s =
    {
      s_port = port;
      s_stack = t;
      s_queue = Queue.create ();
      s_cond = Sync.Condition.create (Ipv4.sim t.ip);
      s_sockbuf =
        Option.map (fun limit -> Host.Kernel.Sockbuf.create ~limit) t.sockbuf_limit;
      s_open = true;
    }
  in
  Hashtbl.add t.ports port s;
  s

let close s =
  s.s_open <- false;
  Hashtbl.remove s.s_stack.ports s.s_port;
  if s.s_stack.pcb_cache == Some s then s.s_stack.pcb_cache <- None

let sendto s ~dst ~dst_port data =
  let t = s.s_stack in
  (* the system call / user-level protocol work happens in the caller *)
  Host.Cpu.charge (Ipv4.cpu t.ip) (t.costs.app_send_ns (Bytes.length data));
  if t.costs.backpressure then begin
    (* user-level path: the sender sees the send queue and waits for room
       rather than losing packets (§7.4) *)
    let iface = Ipv4.iface t.ip in
    while Iface.queue_length iface >= Iface.queue_limit iface - 1 do
      Engine.Proc.sleep (Ipv4.sim t.ip) ~time:(Engine.Sim.us 10)
    done
  end;
  let hdr = Bytes.create header_size in
  Bytes.set_uint16_be hdr 0 s.s_port;
  Bytes.set_uint16_be hdr 2 dst_port;
  Bytes.set_uint16_be hdr 4 (header_size + Bytes.length data);
  Bytes.set_uint16_be hdr 6 0;
  let view = Buf.append (Buf.of_bytes hdr) (Buf.of_bytes data) in
  if t.checksum then begin
    let c = Checksum.compute_buf view in
    (* an all-zero checksum field means "no checksum" in UDP *)
    Bytes.set_uint16_be hdr 6 (if c = 0 then 0xffff else c)
  end;
  (* sendto has copy semantics: snapshot so the caller may reuse [data]
     while the datagram sits in transmit queues — the socket-layer copy *)
  let pdu = Buf.copy ~layer:"udp_app" view in
  t.sent <- t.sent + 1;
  let cost =
    t.costs.stack_send_ns (Bytes.length data)
    + checksum_cost t (Buf.length pdu)
  in
  Ipv4.send t.ip Ipv4.Udp ~dst ~cost_ns:cost pdu

let take s =
  match Queue.take_opt s.s_queue with
  | None -> None
  | Some (src, sport, data) ->
      (match s.s_sockbuf with
      | Some sb -> Host.Kernel.Sockbuf.take sb (Buf.length data)
      | None -> ());
      Host.Cpu.charge
        (Ipv4.cpu s.s_stack.ip)
        (s.s_stack.costs.app_recv_ns (Buf.length data));
      (* the copy into the application's buffer *)
      Some (src, sport, Buf.to_bytes ~layer:"udp_app" data)

let recvfrom s =
  let rec loop () =
    match take s with
    | Some r -> r
    | None ->
        Sync.Condition.wait s.s_cond;
        loop ()
  in
  loop ()

let recvfrom_timeout s ~timeout =
  let sim = Ipv4.sim s.s_stack.ip in
  let deadline = Sim.now sim + timeout in
  let rec loop () =
    match take s with
    | Some r -> Some r
    | None ->
        if Sim.now sim >= deadline then None
        else begin
          let fired = ref false in
          Proc.suspend (fun resume ->
              let resume_once cancel =
                if not !fired then begin
                  fired := true;
                  cancel ();
                  resume ()
                end
              in
              let h =
                Sim.schedule_at ~label:"udp.timeout" sim deadline (fun () ->
                    resume_once (fun () -> ()))
              in
              ignore
                (Proc.spawn ~name:"udp-timeout" sim (fun () ->
                     Sync.Condition.wait s.s_cond;
                     resume_once (fun () -> Sim.cancel h))));
          loop ()
        end
  in
  loop ()

let pending s = Queue.length s.s_queue

let sockbuf_drops t =
  Hashtbl.fold
    (fun _ s acc ->
      acc + match s.s_sockbuf with Some sb -> Host.Kernel.Sockbuf.drops sb | None -> 0)
    t.ports 0

let checksum_failures t = t.csum_failures
let datagrams_sent t = t.sent
let datagrams_delivered t = t.delivered
