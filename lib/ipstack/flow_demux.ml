open Engine

let header_size = 8
let buffer_count = 32

type t = {
  u : Unet.t;
  ep : Unet.Endpoint.t;
  alloc : Unet.Segment.Allocator.t;
  chan : Unet.Channel.id;
  addr : int;
  peer : int;
  flows : (int, src:int -> bytes -> unit) Hashtbl.t;
  mutable kernel_handler : flow_id:int -> src:int -> bytes -> unit;
  in_flight : (Unet.Desc.tx * (int * int)) Queue.t;
  mutable n_delivered : int;
  mutable n_fallbacks : int;
}

let local_addr t = t.addr
let delivered t = t.n_delivered
let kernel_fallbacks t = t.n_fallbacks

let register_flow t ~flow_id handler =
  if Hashtbl.mem t.flows flow_id then
    Fmt.invalid_arg "Flow_demux: flow %d already registered" flow_id;
  Hashtbl.replace t.flows flow_id handler

let unregister_flow t ~flow_id = Hashtbl.remove t.flows flow_id
let set_kernel_handler t h = t.kernel_handler <- h

(* prepending the flow tag is pure slice concatenation over the caller's
   payload; the counted copy happens where the packet is staged (inline
   snapshot or communication-segment write) *)
let frame t ~flow_id payload =
  let hdr = Bytes.create header_size in
  Bytes.set_int32_be hdr 0 (Int32.of_int flow_id);
  Bytes.set_int32_be hdr 4 (Int32.of_int t.addr);
  Buf.append (Buf.of_bytes hdr) (Buf.of_bytes payload)

let send t ~flow_id payload =
  let pkt = frame t ~flow_id payload in
  let rec reap () =
    match Queue.peek_opt t.in_flight with
    | Some ((desc : Unet.Desc.tx), buf) when desc.injected ->
        ignore (Queue.pop t.in_flight);
        Unet.Segment.Allocator.free t.alloc buf;
        reap ()
    | _ -> ()
  in
  reap ();
  if Buf.length pkt <= Unet.Desc.inline_max then begin
    (* [send] has copy semantics; the descriptor must own the bytes *)
    let pkt = Buf.copy ~layer:"flow_tx" pkt in
    match Unet.send t.u t.ep (Unet.Desc.tx ~chan:t.chan (Unet.Desc.Inline pkt)) with
    | Ok () -> ()
    | Error Unet.Queue_full ->
        Fmt.failwith "Flow_demux.send: back-pressure (send queue full)"
    | Error e -> Fmt.failwith "Flow_demux.send: %a" Unet.pp_error e
  end
  else begin
    let rec alloc_buf () =
      reap ();
      match Unet.Segment.Allocator.alloc t.alloc with
      | Some b -> b
      | None ->
          Proc.sleep (Unet.sim t.u) ~time:(Sim.us 5);
          alloc_buf ()
    in
    let ((off, _) as buf) = alloc_buf () in
    Unet.Segment.write_buf ~layer:"flow_tx" t.ep.segment ~off pkt;
    let desc =
      Unet.Desc.tx ~chan:t.chan (Unet.Desc.Buffers [ (off, Buf.length pkt) ])
    in
    match Unet.send t.u t.ep desc with
    | Ok () -> Queue.add (desc, buf) t.in_flight
    | Error e ->
        Unet.Segment.Allocator.free t.alloc buf;
        Fmt.failwith "Flow_demux.send: %a" Unet.pp_error e
  end

(* demultiplexer process: the user-level library polling its endpoint *)
let demux_cost_ns = 1_000

let start t =
  ignore
    (Proc.spawn ~name:"flow-demux" (Unet.sim t.u) (fun () ->
         let rec loop () =
           let rx = Unet.recv t.u t.ep in
           (* [pkt] may view receive buffers: anything that outlives this
              iteration is copied out before [release] frees them *)
           let pkt, release =
             match rx.Unet.Desc.rx_payload with
             | Unet.Desc.Inline b -> (b, fun () -> ())
             | Unet.Desc.Buffers bufs ->
                 ( Buf.concat
                     (List.map
                        (fun (off, l) -> Unet.Segment.view t.ep.segment ~off ~len:l)
                        bufs),
                   fun () ->
                     List.iter
                       (fun (off, _) ->
                         ignore
                           (Unet.provide_free_buffer t.u t.ep ~off
                              ~len:(Unet.Segment.Allocator.block_size t.alloc)))
                       bufs )
           in
           if Buf.length pkt >= header_size then begin
             let flow_id = Int32.to_int (Buf.get_uint32_be pkt 0) in
             let src = Int32.to_int (Buf.get_uint32_be pkt 4) in
             (* the copy into application memory *)
             let payload =
               Buf.to_bytes ~layer:"flow_rx"
                 (Buf.sub pkt ~pos:header_size
                    ~len:(Buf.length pkt - header_size))
             in
             release ();
             Host.Cpu.charge (Unet.cpu t.u) demux_cost_ns;
             match Hashtbl.find_opt t.flows flow_id with
             | Some handler ->
                 t.n_delivered <- t.n_delivered + 1;
                 handler ~src payload
             | None ->
                 (* unresolved tag: hand to the kernel endpoint — a real
                    system call's worth of generalized processing *)
                 t.n_fallbacks <- t.n_fallbacks + 1;
                 Host.Cpu.charge (Unet.cpu t.u)
                   (Host.Cpu.machine (Unet.cpu t.u)).Host.Machine.syscall_ns;
                 t.kernel_handler ~flow_id ~src payload
           end
           else release ();
           loop ()
         in
         loop ()))

let side u ~mtu ~addr ~peer ~ep ~alloc ~chan =
  let t =
    {
      u;
      ep;
      alloc;
      chan;
      addr;
      peer;
      flows = Hashtbl.create 16;
      kernel_handler = (fun ~flow_id:_ ~src:_ _ -> ());
      in_flight = Queue.create ();
      n_delivered = 0;
      n_fallbacks = 0;
    }
  in
  ignore mtu;
  start t;
  t

let mk_endpoint u ~mtu =
  let block = mtu + 64 in
  let ep =
    match
      Unet.create_endpoint u ~tx_slots:128 ~rx_slots:128
        ~free_slots:(buffer_count + 1)
        ~seg_size:(2 * buffer_count * block)
        ()
    with
    | Ok ep -> ep
    | Error e -> Fmt.invalid_arg "Flow_demux.pair: %a" Unet.pp_error e
  in
  let alloc = Unet.Segment.Allocator.create ep.segment ~block in
  for _ = 1 to buffer_count do
    match Unet.Segment.Allocator.alloc alloc with
    | Some (off, len) ->
        (match Unet.provide_free_buffer u ep ~off ~len with
        | Ok () -> ()
        | Error e -> Fmt.invalid_arg "Flow_demux.pair: %a" Unet.pp_error e)
    | None -> assert false
  done;
  (ep, alloc)

let pair ?(mtu = 9_000) ua ub ~local_addr ~remote_addr =
  let ep_a, alloc_a = mk_endpoint ua ~mtu in
  let ep_b, alloc_b = mk_endpoint ub ~mtu in
  let ch_a, ch_b = Unet.connect_pair (ua, ep_a) (ub, ep_b) in
  ( side ua ~mtu ~addr:local_addr ~peer:remote_addr ~ep:ep_a ~alloc:alloc_a
      ~chan:ch_a,
    side ub ~mtu ~addr:remote_addr ~peer:local_addr ~ep:ep_b ~alloc:alloc_b
      ~chan:ch_b )
