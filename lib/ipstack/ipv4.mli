(** A minimal IP layer (§7.5): 20-byte headers, protocol demultiplexing, a
    9 KB MTU over U-Net, and no send-side fragmentation (known harmful —
    transports segment instead). Addresses are the cluster host indices. *)

type proto = Udp | Tcp

val proto_number : proto -> int

type t

val attach : Iface.t -> addr:int -> t
val addr : t -> int
val iface : t -> Iface.t
val sim : t -> Engine.Sim.t
val cpu : t -> Host.Cpu.t

val mtu : t -> int
(** Maximum transport payload per packet (iface MTU minus the IP header). *)

val send :
  t ->
  proto ->
  ?ctx:Engine.Span.ctx ->
  dst:int ->
  cost_ns:int ->
  Engine.Buf.t ->
  unit
(** Wrap the transport payload in an IP header (a zero-copy slice prepend)
    and hand it to the interface; [cost_ns] is the transport's send-side
    processing cost (the send half of IP is collapsed into the transport,
    §7.5). Raises on payloads beyond the MTU: no fragmentation. The
    payload's storage must not be mutated after the call (see
    {!Iface.send}). *)

val register :
  t ->
  proto ->
  rx_cost_ns:(Engine.Buf.t -> int) ->
  (src:int -> Engine.Buf.t -> unit) ->
  unit
(** Install the transport's receive handler and cost model. The handler gets
    the transport payload as a view of a packet that owns its storage (safe
    to retain); packets failing the header checksum and packets for
    unregistered protocols are dropped (and counted). *)

val header_size : int
val bad_packets : t -> int
