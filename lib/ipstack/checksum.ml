let compute b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.compute: range out of bounds";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + (Bytes.get_uint8 b !i lsl 8) + Bytes.get_uint8 b (!i + 1);
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 b !i lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let compute_bytes b = compute b ~pos:0 ~len:(Bytes.length b)

let verify b ~pos ~len = compute b ~pos ~len = 0

let cost_ns len = len * 10

(* Span-iterating variant: byte parity relative to the start of the slice
   decides whether a byte lands in the high or low half of its 16-bit word,
   so the result equals [compute] over the equivalent contiguous buffer
   whatever the span shape. *)
let compute_buf b =
  let sum = ref 0 and odd = ref false in
  Engine.Buf.iter_spans b (fun base ~pos ~len ->
      for i = pos to pos + len - 1 do
        let v = Bytes.get_uint8 base i in
        if !odd then sum := !sum + v else sum := !sum + (v lsl 8);
        odd := not !odd
      done);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let verify_buf b = compute_buf b = 0
