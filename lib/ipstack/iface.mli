(** A network interface as seen by the IP suite: a way to hand a packet to a
    peer host, with the per-packet protocol-processing cost charged on a
    serialized "stack" process (the user-level protocol library when running
    over U-Net, the kernel's protocol path otherwise).

    Packet transmission and delivery both pass through the host's stack
    process, so protocol processing for concurrent flows serializes on the
    host CPU exactly as it does on a real machine.

    Packets are {!Engine.Buf.t} slices. A caller handing a packet to
    {!send} gives up the right to mutate the memory it views: the interface
    may retain slices of it (in the transmit queue and in frames still on
    the wire) until delivery completes. On the receive side the interface
    always delivers packets that own their storage, so transports may
    retain views of them indefinitely. *)

type t

val sim : t -> Engine.Sim.t
val cpu : t -> Host.Cpu.t
val mtu : t -> int

val send : t -> ?ctx:Engine.Span.ctx -> cost_ns:int -> Engine.Buf.t -> unit
(** Queue a packet for transmission; [cost_ns] is the sender-side protocol
    processing to charge (computed by the caller: UDP/TCP/IP costs). Never
    blocks the caller; safe to call from timers and handlers. The packet's
    underlying storage must not be mutated after the call. [ctx] rides the
    packet down to the U-Net descriptor (ignored by the framed link). *)

val set_rx : t -> rx_cost_ns:(Engine.Buf.t -> int) -> (Engine.Buf.t -> unit) -> unit
(** Install the packet-delivery upcall. [rx_cost_ns] prices the
    receiver-side protocol processing of a packet before the handler runs
    (in stack-process context). Delivered packets own their storage. *)

val packets_sent : t -> int
val packets_delivered : t -> int
val tx_drops : t -> int
(** Packets dropped before reaching the wire (interface queue overflow). *)

val queue_length : t -> int
(** Packets currently queued toward the wire. *)

val queue_limit : t -> int

(** Over a dedicated U-Net channel between two hosts — the paper's
    IP-over-U-Net transport (§7.1): all IP traffic between two applications
    rides a single channel. *)
val unet_pair :
  ?mtu:int ->
  ?tx_queue:int ->
  ?encapsulation:bool ->
  Unet.t ->
  Unet.t ->
  t * t
(** [mtu] defaults to the paper's 9 KB IP-over-U-Net MTU. [encapsulation]
    adds the LLC/SNAP header of classical IP-over-ATM (used by the kernel
    baseline; the U-Net path runs bare, §7.1). *)

(** Over a raw point-to-point byte link (used for the Ethernet baseline):
    frames serialize at the link bandwidth; frames larger than the wire MTU
    are fragmented and reassembled transparently, with the per-fragment
    driver cost charged. *)
val framed_pair :
  sim:Engine.Sim.t ->
  cpu_a:Host.Cpu.t ->
  cpu_b:Host.Cpu.t ->
  bandwidth_mbps:float ->
  wire_mtu:int ->
  per_frame_ns:int ->
  propagation:Engine.Sim.time ->
  ?tx_queue:int ->
  ?ip_mtu:int ->
  unit ->
  t * t
