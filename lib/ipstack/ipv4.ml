open Engine

type proto = Udp | Tcp

let proto_number = function Udp -> 17 | Tcp -> 6
let header_size = 20

type handler = { h_cost : Buf.t -> int; h_fn : src:int -> Buf.t -> unit }

type t = {
  iface : Iface.t;
  addr : int;
  mutable udp : handler option;
  mutable tcp : handler option;
  mutable bad : int;
}

let ip_overhead_ns = 500 (* residual IP processing not folded into transports *)

let handler_payload pkt =
  Buf.sub pkt ~pos:header_size ~len:(Buf.length pkt - header_size)

let attach iface ~addr =
  let t = { iface; addr; udp = None; tcp = None; bad = 0 } in
  let rx_cost pkt =
    if Buf.length pkt < header_size then 0
    else
      let proto = Buf.get_uint8 pkt 9 in
      let h = if proto = 17 then t.udp else if proto = 6 then t.tcp else None in
      match h with
      | Some h ->
          (* cost model sees the payload; the sub is a zero-copy view *)
          ip_overhead_ns + h.h_cost (handler_payload pkt)
      | None -> ip_overhead_ns
  in
  let rx pkt =
    if Buf.length pkt < header_size then t.bad <- t.bad + 1
    else if not (Checksum.verify_buf (Buf.sub pkt ~pos:0 ~len:header_size))
    then t.bad <- t.bad + 1
    else begin
      let proto = Buf.get_uint8 pkt 9 in
      let src = Int32.to_int (Buf.get_uint32_be pkt 12) in
      let total = Buf.get_uint16_be pkt 2 in
      if total <> Buf.length pkt then t.bad <- t.bad + 1
      else
        let h =
          if proto = 17 then t.udp else if proto = 6 then t.tcp else None
        in
        match h with
        | Some h -> h.h_fn ~src (handler_payload pkt)
        | None -> t.bad <- t.bad + 1
    end
  in
  Iface.set_rx iface ~rx_cost_ns:rx_cost rx;
  t

let addr t = t.addr
let iface t = t.iface
let sim t = Iface.sim t.iface
let cpu t = Iface.cpu t.iface
let mtu t = Iface.mtu t.iface - header_size
let bad_packets t = t.bad

let send t proto ?ctx ~dst ~cost_ns payload =
  let len = Buf.length payload in
  if len > mtu t then
    Fmt.invalid_arg
      "Ipv4.send: %d-byte payload exceeds the %d-byte MTU (no fragmentation)"
      len (mtu t);
  let hdr = Bytes.create header_size in
  Bytes.set_uint8 hdr 0 0x45;
  Bytes.set_uint8 hdr 1 0;
  Bytes.set_uint16_be hdr 2 (header_size + len);
  Bytes.set_uint16_be hdr 4 0 (* id *);
  Bytes.set_uint16_be hdr 6 0x4000 (* don't fragment *);
  Bytes.set_uint8 hdr 8 64 (* ttl *);
  Bytes.set_uint8 hdr 9 (proto_number proto);
  Bytes.set_uint16_be hdr 10 0 (* checksum placeholder *);
  Bytes.set_int32_be hdr 12 (Int32.of_int t.addr);
  Bytes.set_int32_be hdr 16 (Int32.of_int dst);
  let csum = Checksum.compute hdr ~pos:0 ~len:header_size in
  Bytes.set_uint16_be hdr 10 csum;
  (* header prepend is slice concatenation; the payload is never copied *)
  Iface.send t.iface ?ctx ~cost_ns:(cost_ns + ip_overhead_ns)
    (Buf.append (Buf.of_bytes hdr) payload)

let register t proto ~rx_cost_ns fn =
  let h = { h_cost = rx_cost_ns; h_fn = fn } in
  match proto with Udp -> t.udp <- Some h | Tcp -> t.tcp <- Some h
