(** The 16-bit one's-complement Internet checksum (RFC 1071). *)

val compute : bytes -> pos:int -> len:int -> int
(** Checksum of a byte range (the final complemented 16-bit value). *)

val compute_bytes : bytes -> int

val verify : bytes -> pos:int -> len:int -> bool
(** True when a range that includes its checksum field sums to 0xFFFF. *)

val cost_ns : int -> int
(** Modelled processing cost: ~1 µs per 100 bytes on the reference machine
    (§7.6). *)

val compute_buf : Engine.Buf.t -> int
(** Checksum across every span of a slice without materializing it; equals
    [compute_bytes] of the equivalent contiguous buffer. *)

val verify_buf : Engine.Buf.t -> bool
