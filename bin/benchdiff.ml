(* benchdiff: compare two BENCH_<figure>.json snapshots (written by
   bench/main.exe and bin/enginebench.exe) and flag values that moved
   beyond tolerance.

   Virtual-time members (curves, checks, copy counters) are
   deterministic for a given simulator, so they get one symmetric
   --tolerance: any drift is a behavior change, not noise. Wall-clock
   members (events/sec, µs/event) are gated per metric by the baseline
   snapshot's "gates" object with direction-aware tolerances — only
   movement in the bad direction fails, so noise can never flake an
   improvement (see Engine.Benchgate).

   Exit codes: 0 agreement, 1 flagged regression/drift, 2 unreadable
   snapshot, 3 missing baseline (so CI can say "seed one" distinctly). *)

open Cmdliner

let print_metric_table old_j new_j =
  let rows = Engine.Benchgate.metric_rows old_j new_j in
  if rows <> [] then begin
    Format.printf "  %-34s %14s %14s %9s@." "metric" "baseline" "current"
      "delta";
    List.iter
      (fun (k, o, n) ->
        let num = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
        let delta =
          match (o, n) with
          | Some o, Some n ->
              Printf.sprintf "%+.1f%%" (Engine.Benchgate.signed_delta o n *. 100.)
          | _ -> "-"
        in
        Format.printf "  %-34s %14s %14s %9s@." k (num o) (num n) delta)
      rows
  end

let run old_path new_path tolerance =
  if not (Sys.file_exists old_path) then begin
    (* its own exit code so CI can distinguish "no baseline recorded yet"
       (seed it) from a real regression or a broken snapshot *)
    Format.eprintf
      "benchdiff: baseline %s does not exist (record one with bench/main.exe)@."
      old_path;
    3
  end
  else
    try
      let old_j = Engine.Json.of_file old_path in
      let new_j = Engine.Json.of_file new_path in
      print_metric_table old_j new_j;
      let flagged = Engine.Benchgate.diff ~tolerance old_j new_j in
      List.iter (fun msg -> Format.printf "  %s@." msg) flagged;
      if flagged = [] then begin
        Format.printf "ok: %s and %s agree within %.0f%% (plus %d gate(s))@."
          old_path new_path (tolerance *. 100.)
          (List.length (Engine.Benchgate.gates_of_json old_j));
        0
      end
      else begin
        Format.printf "%d value(s) beyond tolerance (%s -> %s)@."
          (List.length flagged) old_path new_path;
        1
      end
    with
    | Sys_error msg ->
        Format.eprintf "benchdiff: %s@." msg;
        2
    | Engine.Json.Parse_error msg ->
        Format.eprintf "benchdiff: parse error: %s@." msg;
        2

(* plain strings, not Arg.file: a missing baseline must reach [run] so it
   can exit 3 rather than cmdliner's generic 124 *)
let old_path =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASELINE" ~doc:"The baseline BENCH_*.json snapshot.")

let new_path =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"The snapshot to compare against it.")

let tolerance =
  Arg.(
    value & opt float 0.1
    & info [ "tolerance" ] ~docv:"FRACTION"
        ~doc:
          "Relative drift allowed per value before it is flagged (0.1 = \
           10%). Metrics named by the baseline's per-metric \
           direction-aware gates use their own tolerances instead.")

let cmd =
  let doc = "diff two bench snapshots and flag regressions" in
  Cmd.v
    (Cmd.info "benchdiff" ~doc)
    Term.(const run $ old_path $ new_path $ tolerance)

let () = Stdlib.exit (Cmd.eval' cmd)
