(* benchdiff: compare two BENCH_<figure>.json snapshots (written by
   bench/main.exe) and flag values that moved beyond a tolerance. The
   snapshots hold virtual-time measurements and copy counters, which are
   deterministic for a given simulator, so any drift is a behavior
   change, not noise. *)

open Cmdliner

let j_series j =
  match Engine.Json.member "series" j with
  | Some (Engine.Json.Obj kvs) ->
      List.map
        (fun (label, v) ->
          let pts =
            match v with
            | Engine.Json.List l ->
                List.filter_map
                  (function
                    | Engine.Json.List [ a; b ] -> (
                        match
                          (Engine.Json.to_float a, Engine.Json.to_float b)
                        with
                        | Some x, Some y -> Some (x, y)
                        | _ -> None)
                    | _ -> None)
                  l
            | _ -> []
          in
          (label, pts))
        kvs
  | _ -> []

let j_checks j =
  match Engine.Json.member "checks" j with
  | Some (Engine.Json.Obj kvs) ->
      List.filter_map
        (fun (what, v) ->
          match v with Engine.Json.Bool b -> Some (what, b) | _ -> None)
        kvs
  | _ -> []

let j_counter name j =
  Option.bind (Engine.Json.member name j) Engine.Json.to_float

let rel_delta old_v new_v =
  if old_v = new_v then 0.
  else Float.abs (new_v -. old_v) /. Float.max (Float.abs old_v) 1e-9

let diff ~tolerance old_j new_j =
  let flagged = ref 0 in
  let flag fmt =
    incr flagged;
    Format.printf fmt
  in
  (* checks that went PASS -> FAIL are regressions outright *)
  let new_checks = j_checks new_j in
  List.iter
    (fun (what, old_ok) ->
      match List.assoc_opt what new_checks with
      | Some new_ok when old_ok && not new_ok ->
          flag "  REGRESSION check now fails: %s@." what
      | None when old_ok -> flag "  MISSING check disappeared: %s@." what
      | _ -> ())
    (j_checks old_j);
  (* curve points, matched by label and x value *)
  let new_series = j_series new_j in
  List.iter
    (fun (label, old_pts) ->
      match List.assoc_opt label new_series with
      | None -> flag "  MISSING series disappeared: %s@." label
      | Some new_pts ->
          List.iter
            (fun (x, old_y) ->
              match
                List.find_opt (fun (x', _) -> x' = x) new_pts
              with
              | None -> flag "  MISSING point %s at x=%g@." label x
              | Some (_, new_y) ->
                  let d = rel_delta old_y new_y in
                  if d > tolerance then
                    flag "  DRIFT %s at x=%g: %g -> %g (%+.1f%%)@." label x
                      old_y
                      new_y
                      ((new_y -. old_y) /. Float.max (Float.abs old_y) 1e-9
                      *. 100.))
            old_pts)
    (j_series old_j);
  (* the zero-copy layer's totals *)
  List.iter
    (fun name ->
      match (j_counter name old_j, j_counter name new_j) with
      | Some o, Some n when rel_delta o n > tolerance ->
          flag "  DRIFT %s: %.0f -> %.0f@." name o n
      | _ -> ())
    [ "buf_copies_total"; "buf_copy_bytes_total" ];
  !flagged

(* every top-level numeric member is a metric worth showing side by side *)
let numeric_members j =
  match j with
  | Engine.Json.Obj kvs ->
      List.filter_map
        (fun (k, v) ->
          match v with Engine.Json.Num n -> Some (k, n) | _ -> None)
        kvs
  | _ -> []

let print_metric_table old_j new_j =
  let olds = numeric_members old_j in
  let news = numeric_members new_j in
  let keys =
    List.map fst olds
    @ List.filter (fun k -> not (List.mem_assoc k olds)) (List.map fst news)
  in
  if keys <> [] then begin
    Format.printf "  %-28s %14s %14s %9s@." "metric" "baseline" "current"
      "delta";
    List.iter
      (fun k ->
        let o = List.assoc_opt k olds in
        let n = List.assoc_opt k news in
        let num = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
        let delta =
          match (o, n) with
          | Some o, Some n ->
              Printf.sprintf "%+.1f%%"
                ((n -. o) /. Float.max (Float.abs o) 1e-9 *. 100.)
          | _ -> "-"
        in
        Format.printf "  %-28s %14s %14s %9s@." k (num o) (num n) delta)
      keys
  end

let run old_path new_path tolerance =
  if not (Sys.file_exists old_path) then begin
    (* its own exit code so CI can distinguish "no baseline recorded yet"
       (seed it) from a real regression or a broken snapshot *)
    Format.eprintf
      "benchdiff: baseline %s does not exist (record one with bench/main.exe)@."
      old_path;
    3
  end
  else
  try
    let old_j = Engine.Json.of_file old_path in
    let new_j = Engine.Json.of_file new_path in
    print_metric_table old_j new_j;
    let flagged = diff ~tolerance old_j new_j in
    if flagged = 0 then begin
      Format.printf "ok: %s and %s agree within %.0f%%@." old_path new_path
        (tolerance *. 100.);
      0
    end
    else begin
      Format.printf "%d value(s) beyond the %.0f%% tolerance (%s -> %s)@."
        flagged (tolerance *. 100.) old_path new_path;
      1
    end
  with
  | Sys_error msg ->
      Format.eprintf "benchdiff: %s@." msg;
      2
  | Engine.Json.Parse_error msg ->
      Format.eprintf "benchdiff: parse error: %s@." msg;
      2

(* plain strings, not Arg.file: a missing baseline must reach [run] so it
   can exit 3 rather than cmdliner's generic 124 *)
let old_path =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASELINE" ~doc:"The baseline BENCH_*.json snapshot.")

let new_path =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"The snapshot to compare against it.")

let tolerance =
  Arg.(
    value & opt float 0.1
    & info [ "tolerance" ] ~docv:"FRACTION"
        ~doc:
          "Relative drift allowed per value before it is flagged (0.1 = \
           10%).")

let cmd =
  let doc = "diff two bench snapshots and flag regressions" in
  Cmd.v
    (Cmd.info "benchdiff" ~doc)
    Term.(const run $ old_path $ new_path $ tolerance)

let () = Stdlib.exit (Cmd.eval' cmd)
