(* unetsim: run the paper's tables and figures on the simulated testbed. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* Experiment-specific report fragments accumulated across the run (one
   entry per experiment when --report is active). *)
let report_acc : string list list ref = ref []

let run_experiment ?(collect_report = false) name quick check =
  match Experiments.Registry.find name with
  | None ->
      Format.eprintf "unknown experiment %S; try: %s@." name
        (String.concat ", " Experiments.Registry.names);
      1
  | Some e ->
      let o = e.run ~quick in
      if collect_report then
        report_acc := Experiments.Registry.report_sections e o :: !report_acc;
      if check then begin
        List.iter
          (fun (what, ok) ->
            Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") what)
          o.Experiments.Registry.o_checks;
        if List.for_all snd o.o_checks then 0
        else begin
          (* a failed claim is as postmortem-worthy as a stall *)
          if Engine.Recorder.armed () then
            Engine.Recorder.trigger
              ~reason:(Printf.sprintf "experiment %s: checks failed" name);
          1
        end
      end
      else begin
        o.Experiments.Registry.o_print ();
        0
      end

let sanitize label =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> ch
      | _ -> '_')
    label

let write_plotdata dir quick =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let wrote = ref [] in
  List.iter
    (fun (e : Experiments.Registry.experiment) ->
      match (e.run ~quick).Experiments.Registry.o_series with
      | [] -> ()
      | curves ->
          List.iter
            (fun (label, points) ->
              let path =
                Filename.concat dir
                  (Printf.sprintf "%s_%s.dat" e.name (sanitize label))
              in
              let oc = open_out path in
              Printf.fprintf oc "# %s: %s\n# x  y\n" e.name label;
              List.iter (fun (x, y) -> Printf.fprintf oc "%g %g\n" x y) points;
              close_out oc;
              wrote := path :: !wrote)
            curves;
          Format.printf "wrote %d curves for %s@." (List.length curves) e.name)
    Experiments.Registry.all;
  (* a gnuplot driver covering every figure *)
  let gp = Filename.concat dir "plot.gp" in
  let oc = open_out gp in
  output_string oc
    "# gnuplot driver for the U-Net reproduction figures\n\
     set terminal pngcairo size 900,600\n\
     set key left top\n\
     set grid\n";
  List.iter
    (fun fig ->
      let files =
        List.filter
          (fun p -> Filename.check_suffix p ".dat"
                    && String.length (Filename.basename p) > String.length fig
                    && String.sub (Filename.basename p) 0 (String.length fig) = fig)
          (List.rev !wrote)
      in
      if files <> [] then begin
        Printf.fprintf oc "set output '%s.png'\nset title '%s'\nplot %s\n" fig
          fig
          (String.concat ", "
             (List.map
                (fun p ->
                  Printf.sprintf "'%s' using 1:2 with linespoints title '%s'"
                    (Filename.basename p)
                    (Filename.remove_extension (Filename.basename p)))
                files))
      end)
    [ "fig3"; "fig4"; "fig6"; "fig7"; "fig8"; "fig9" ];
  close_out oc;
  Format.printf "wrote %s (run: cd %s && gnuplot plot.gp)@." gp dir;
  0

let run_all ?collect_report quick check =
  List.fold_left
    (fun acc (e : Experiments.Registry.experiment) ->
      Format.printf "@.=== %s: %s ===@.@." e.name e.description;
      max acc (run_experiment ?collect_report e.name quick check))
    0 Experiments.Registry.all

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller iteration counts (CI-sized runs).")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Evaluate the paper's qualitative claims instead of printing data.")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Show debug logs (drops, retransmissions, TCP timeouts).")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record virtual-time trace events during the run and write them as \
           Chrome trace_event JSON to $(docv) (open in Perfetto or \
           chrome://tracing). Combined with $(b,--spans), flow events link \
           the send and receive sides of each message.")

let metrics_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "After the run, dump the metrics registry to $(docv): Prometheus \
           text format, or JSON when $(docv) ends in .json.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "plot-data" ] ~docv:"DIR"
        ~doc:
          "Write every figure's curves as gnuplot-ready .dat files (plus a \
           plot.gp driver) into $(docv) and exit.")

let spans_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"FILE"
        ~doc:
          "Collect per-message causal spans during the run and write the \
           span trees (ids, parentage, milestone marks, phase breakdowns) \
           as JSON to $(docv).")

let pcap_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "pcap" ] ~docv:"FILE"
        ~doc:
          "Capture simulated traffic (AAL5 cells, Ethernet frames) with \
           virtual-time timestamps and write a pcapng file to $(docv), \
           openable in Wireshark.")

let fault =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection: a comma-separated key=value spec, \
           e.g. $(b,loss=0.01,seed=42,at=link). Keys: seed, loss (alias p), \
           corrupt, dup, reorder, reorder_span, burst_enter, burst_exit, \
           burst_loss, dma_stall, dma_stall_ns, rx_overrun, and at — a \
           +-separated subset of up, down, switch, ni (shorthands: link = \
           up+down, all). Every simulated cluster built during the run \
           attaches the spec at the selected sites; all draws come from the \
           seed, so a faulty run replays exactly.")

let per_cell =
  Arg.(
    value & flag
    & info [ "per-cell" ]
        ~doc:
          "Disable the cell-train fast path and schedule every ATM cell as \
           its own event (the reference slow path). Observable results are \
           identical either way; this exists for differential testing and \
           for measuring the fast path's event savings.")

let breakdown =
  Arg.(
    value & flag
    & info [ "breakdown" ]
        ~doc:
          "Collect spans during the run and print the per-phase latency \
           attribution afterwards (the measured Table 2 decomposition when \
           the run contains UAM round trips).")

let profile_file =
  Arg.(
    value
    & opt ~vopt:(Some "profile.folded") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Attribute virtual time to per-host frame stacks during the run \
           and write a collapsed-stack (folded) file to $(docv) (default \
           $(b,profile.folded)), the format flamegraph.pl and speedscope \
           ingest. Each host's root frame's inclusive time equals the \
           run's elapsed virtual time.")

let selfprof_file =
  Arg.(
    value
    & opt ~vopt:(Some "selfprof.folded") (some string) None
    & info [ "selfprof" ] ~docv:"FILE"
        ~doc:
          "Attribute wall-clock time and GC allocation to the same frame \
           taxonomy as $(b,--profile) (the two compose; one push feeds \
           both) and write a collapsed-stack wall-time file to $(docv) \
           (default $(b,selfprof.folded)). The root's inclusive wall time \
           equals measured elapsed wall time. Also prints a per-event-kind \
           summary and queue pop-cost figures, and warns when the \
           event-queue tombstone ratio exceeds 25%.")

let timeseries_file =
  Arg.(
    value
    & opt ~vopt:(Some "timeseries.json") (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Sample registered resource probes (ring occupancy, switch port \
           queues, link and i960 utilization, TCP cwnd/flight/rto, UAM \
           unacked windows, fault activity) every --sample-interval of \
           simulated time and write the series as JSON to $(docv) (default \
           $(b,timeseries.json)) plus CSV next to it.")

let sample_interval =
  Arg.(
    value & opt int 10
    & info [ "sample-interval" ] ~docv:"MICROSECONDS"
        ~doc:"Timeseries sampling interval in simulated microseconds.")

let report_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a single self-contained HTML run report to $(docv): \
           experiment description, checks, figure curves, the per-phase \
           latency breakdown, resource-timeseries sparklines, a per-host \
           flamegraph and the metrics registry. Implies span, profile and \
           timeseries collection. The file has no scripts and no external \
           references.")

let sample_pdus =
  Arg.(
    value & opt int 0
    & info [ "sample-pdus" ] ~docv:"N"
        ~doc:
          "Deterministically sample 1 in $(docv) PDUs for deep inspection: \
           sampled PDUs take the per-cell path with full span marks, trace \
           events and pcap capture while everything else rides the cell \
           train. The choice is a pure hash of (seed, PDU index), so the \
           same seed picks the same PDUs on every run — including under \
           $(b,--per-cell). 0 (the default) disables sampling; 1 samples \
           every PDU.")

let sample_seed =
  Arg.(
    value & opt int 0x5eed
    & info [ "sample-seed" ] ~docv:"SEED"
        ~doc:"Seed for $(b,--sample-pdus) (default $(b,0x5eed)).")

let postmortem_dir =
  Arg.(
    value
    & opt ~vopt:(Some "postmortem") (some string) None
    & info [ "postmortem" ] ~docv:"DIR"
        ~doc:
          "Arm the flight recorder: if some flow sits undelivered past the \
           stall deadline, or an experiment check fails under $(b,--check), \
           dump a post-mortem bundle (flow table, queue snapshots, recent \
           trace events, metrics, and any enabled telemetry) into $(docv) \
           (default $(b,postmortem)).")

let paths_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "paths" ] ~docv:"FILE"
        ~doc:
          "Collect INT-style per-PDU path records during the run (per hop: \
           stage, ingress/egress port, queue depth at arrival, hop \
           latency) and write them as JSON to $(docv). Records are \
           synthesized analytically from committed cell trains and \
           stamped at real instants on the per-cell path — the export is \
           byte-identical either way, so this never disables the train \
           fast path.")

let flowstat =
  Arg.(
    value & flag
    & info [ "flowstat" ]
        ~doc:
          "Enable per-flow, per-hop fabric accounting: exact \
           $(b,atm_flow_*{flow,hop}) metric tables for the first flows \
           plus a Space-Saving top-K heavy-hitter sketch over all of \
           them (DESIGN.md \xC2\xA717). Dump with $(b,--metrics) or render \
           with the fabric experiment's congestion atlas in $(b,--report).")

(* --topology single:N | clos:P,S,H *)
let parse_topology s =
  let fail () =
    Error
      (Printf.sprintf
         "bad --topology %S: expected single:HOSTS or \
          clos:PODS,SPINE,HOSTS_PER_POD"
         s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i ->
      let kind = String.sub s 0 i in
      let args =
        List.map int_of_string_opt
          (String.split_on_char ','
             (String.sub s (i + 1) (String.length s - i - 1)))
      in
      (match (kind, args) with
      | "single", [ Some n ] when n >= 1 -> Ok (Atm.Network.Single n)
      | "clos", [ Some pods; Some spine; Some hosts_per_pod ]
        when pods >= 1 && spine >= 1 && hosts_per_pod >= 1 ->
          Ok (Atm.Network.Clos { pods; spine; hosts_per_pod })
      | _ -> fail ())

let topology =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"SPEC"
        ~doc:
          "Fabric shape for every cluster the run builds: \
           $(b,single:HOSTS) (the paper's one-switch testbed) or \
           $(b,clos:PODS,SPINE,HOSTS_PER_POD) (a folded-Clos fat-tree, \
           DESIGN.md \xC2\xA716). Experiments that pin their own topology \
           (e.g. $(b,fabric)) are unaffected.")

let names_doc =
  "EXPERIMENT is one of: all, " ^ String.concat ", " Experiments.Registry.names

let experiment =
  Arg.(
    value
    & pos 0 string "all"
    & info [] ~docv:"EXPERIMENT" ~doc:names_doc)

let experiment_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "experiment" ] ~docv:"EXPERIMENT"
        ~doc:"Same as the positional argument; takes precedence over it.")

let cmd =
  let doc = "reproduce the tables and figures of the U-Net paper (SOSP 1995)" in
  let term =
    Term.(
      const (fun name exp_opt quick check out verbose trace metrics spans pcap
                 breakdown fault per_cell profile selfprof timeseries
                 interval_us sample_n sample_seed report paths flowstat topo
                 postmortem ->
          setup_logs verbose;
          let name = Option.value exp_opt ~default:name in
          if per_cell then Engine.Trainmode.force_per_cell true;
          (match topo with
          | None -> ()
          | Some spec -> (
              match parse_topology spec with
              | Ok t -> Cluster.set_default_topology (Some t)
              | Error msg ->
                  Format.eprintf "%s@." msg;
                  Stdlib.exit 2));
          if flowstat then Atm.Flowstat.configure ();
          if paths <> None then Engine.Pathrec.start ();
          (match fault with
          | None -> ()
          | Some spec -> (
              match Engine.Fault.parse spec with
              | Ok f ->
                  Format.printf "fault injection: %a@." Engine.Fault.pp_spec f;
                  Engine.Fault.configure (Some f)
              | Error msg ->
                  Format.eprintf "bad --fault spec: %s@." msg;
                  Stdlib.exit 2));
          if trace <> None then Engine.Trace.start ();
          if spans <> None || breakdown || report <> None then
            Engine.Span.start ();
          if pcap <> None then Engine.Pcapng.start ();
          if interval_us <= 0 then begin
            Format.eprintf "--sample-interval must be positive@.";
            Stdlib.exit 2
          end;
          Engine.Timeseries.set_interval (Engine.Sim.us interval_us);
          if sample_n < 0 then begin
            Format.eprintf "--sample-pdus must be non-negative@.";
            Stdlib.exit 2
          end;
          if sample_n > 0 then begin
            Engine.Sample.configure ~n:sample_n ~seed:sample_seed;
            (* with sampling on, pcap no longer needs every PDU on the
               per-cell path — sampled PDUs alone feed the capture *)
            Engine.Pcapng.set_granularity Engine.Granularity.Per_train
          end;
          if profile <> None || report <> None then Engine.Profile.start ();
          if selfprof <> None || report <> None then Engine.Selfprof.start ();
          if timeseries <> None || report <> None then
            Engine.Timeseries.start ();
          (match postmortem with
          | Some dir -> Engine.Recorder.start ~dir ()
          | None -> ());
          let finish code =
            let code = ref code in
            let or_fail what f =
              try f ()
              with Sys_error msg ->
                Format.eprintf "cannot write %s: %s@." what msg;
                code := 1
            in
            (* stop before any dump so the folded per-layer counters land
               in --metrics output and the report sections *)
            if Engine.Selfprof.enabled () then Engine.Selfprof.stop ();
            if breakdown then Experiments.Breakdown.print_report ();
            if Engine.Sample.active () then begin
              let offered = Engine.Sample.offered ()
              and sampled = Engine.Sample.sampled () in
              Format.printf
                "sampled %d of %d PDUs for deep inspection (1 in %d, seed \
                 0x%x)@."
                sampled offered (Engine.Sample.n ()) (Engine.Sample.seed ())
            end;
            (match trace with
            | Some path ->
                or_fail "trace" (fun () ->
                    Engine.Trace.write_chrome_file path;
                    let dropped = Engine.Trace.dropped_events () in
                    Format.printf "wrote %d trace events to %s%s@."
                      (Engine.Trace.total_events () - dropped)
                      path
                      (if dropped = 0 then ""
                       else
                         Printf.sprintf
                           " (%d older events beyond the ring dropped)" dropped))
            | None -> ());
            (match spans with
            | Some path ->
                or_fail "spans" (fun () ->
                    Engine.Span.write_file path;
                    Format.printf "wrote %d spans to %s@." (Engine.Span.count ())
                      path)
            | None -> ());
            (match pcap with
            | Some path ->
                or_fail "pcap" (fun () ->
                    Engine.Pcapng.write_file path;
                    Format.printf "wrote %d captured packets to %s@."
                      (Engine.Pcapng.packet_count ())
                      path)
            | None -> ());
            (match metrics with
            | Some path ->
                or_fail "metrics" (fun () ->
                    Engine.Metrics.write_file path;
                    Format.printf "wrote metrics to %s@." path)
            | None -> ());
            (match profile with
            | Some path ->
                or_fail "profile" (fun () ->
                    Engine.Profile.write_folded path;
                    Format.printf
                      "wrote folded profile (%d hosts, %d ns elapsed) to %s@."
                      (List.length (Engine.Profile.hosts ()))
                      (Engine.Profile.elapsed ())
                      path)
            | None -> ());
            (match selfprof with
            | Some path ->
                or_fail "selfprof" (fun () ->
                    Engine.Selfprof.write_folded path;
                    Format.printf
                      "wrote wall-time self-profile (%d ns elapsed) to %s@."
                      (Engine.Selfprof.elapsed_wall_ns ())
                      path;
                    Format.printf "%a" Engine.Selfprof.pp_summary ();
                    if Engine.Sim.tombstone_ratio () > 0.25 then
                      Logs.warn (fun m ->
                          m
                            "tombstone ratio %.0f%%: over a quarter of \
                             event-queue traffic is cancelled events, pure \
                             pop-path waste"
                            (Engine.Sim.tombstone_ratio () *. 100.)))
            | None -> ());
            (match paths with
            | Some path ->
                or_fail "paths" (fun () ->
                    (* settle any still-provisional train-synthesized
                       records before exporting *)
                    Engine.Metrics.flush ();
                    Engine.Pathrec.write_json path;
                    Format.printf "wrote %d path records to %s%s@."
                      (Engine.Pathrec.count ())
                      path
                      (if Engine.Pathrec.dropped () = 0 then ""
                       else
                         Printf.sprintf " (%d beyond the ring dropped)"
                           (Engine.Pathrec.dropped ())))
            | None -> ());
            (match timeseries with
            | Some path ->
                or_fail "timeseries" (fun () ->
                    Engine.Timeseries.write_json path;
                    let csv = Filename.remove_extension path ^ ".csv" in
                    Engine.Timeseries.write_csv csv;
                    Format.printf "wrote %d timeseries to %s and %s@."
                      (List.length (Engine.Timeseries.series ()))
                      path csv)
            | None -> ());
            (match report with
            | Some path ->
                or_fail "report" (fun () ->
                    let sections =
                      List.concat (List.rev !report_acc)
                      @ [
                          Engine.Report.breakdown_section ();
                          Engine.Report.sketch_section ();
                          Engine.Report.sampling_section ();
                          Engine.Report.timeseries_section ();
                          Engine.Report.profile_section ();
                          Engine.Report.engine_section ();
                          Engine.Report.metrics_section ();
                        ]
                    in
                    Engine.Report.write ~path
                      ~title:("U-Net simulation report: " ^ name)
                      sections;
                    Format.printf "wrote report to %s@." path)
            | None -> ());
            Stdlib.exit !code
          in
          let collect_report = report <> None in
          match out with
          | Some dir -> finish (write_plotdata dir quick)
          | None ->
              if name = "all" then finish (run_all ~collect_report quick check)
              else finish (run_experiment ~collect_report name quick check))
      $ experiment $ experiment_opt $ quick $ check $ out $ verbose
      $ trace_file $ metrics_file $ spans_file $ pcap_file $ breakdown $ fault
      $ per_cell $ profile_file $ selfprof_file $ timeseries_file
      $ sample_interval $ sample_pdus $ sample_seed
      $ report_file $ paths_file $ flowstat $ topology
      $ postmortem_dir)
  in
  Cmd.v (Cmd.info "unetsim" ~doc) term

let () = Stdlib.exit (Cmd.eval cmd)
