(* enginebench: wall-clock throughput of the simulator itself.

   Pass 1 (flags off) measures what users pay for: events/sec, µs/event
   and allocated words/event over fig4-at-max-size and a cell-storm
   microbench, written as BENCH_engine-throughput.json with embedded
   direction-aware gates for benchdiff.

   An optional second, instrumented pass (--selfprof / --queue-csv)
   re-runs the workloads with the wall-clock self-profiler and the
   timeseries sampler enabled to produce the wall-time flamegraph and
   the queue-depth series — kept out of the measured pass so profiling
   overhead never pollutes the numbers CI gates on. *)

open Cmdliner

let queue_csv_of_timeseries path =
  let oc = open_out path in
  output_string oc "series,t_ns,value\n";
  List.iter
    (fun (s : Engine.Timeseries.series) ->
      if
        s.s_name = "sim_queue_depth" || s.s_name = "sim_queue_tombstones"
      then
        List.iter
          (fun (t, v) -> Printf.fprintf oc "%s,%d,%g\n" s.s_name t v)
          s.s_points)
    (Engine.Timeseries.series ());
  close_out oc

let run quick per_cell trace timeseries flowstat sample_pdus sample_seed out
    selfprof queue_csv =
  if per_cell then Engine.Trainmode.force_per_cell true;
  (* Observer overhead measurement: the flags below attach train-granular
     observers (and optionally the deterministic PDU sampler) during the
     measured pass itself — the resulting snapshot quantifies what
     telemetry costs on the fast path, and CI's observed smoke compares
     its events_per_pdu against the committed flags-off baseline. The
     default (all off) keeps the measured pass byte-compatible with the
     baseline capture. *)
  if trace then Engine.Trace.start ();
  if timeseries then Engine.Timeseries.start ();
  if flowstat then begin
    Atm.Flowstat.configure ();
    Engine.Pathrec.start ()
  end;
  if sample_pdus < 0 then begin
    Format.eprintf "--sample-pdus must be non-negative@.";
    Stdlib.exit 2
  end;
  if sample_pdus > 0 then
    Engine.Sample.configure ~n:sample_pdus ~seed:sample_seed;
  Format.printf "engine-throughput bench (%s mode)@."
    (if quick then "quick" else "full");
  let samples = Experiments.Enginebench.measure ~quick in
  Experiments.Enginebench.print samples;
  Engine.Json.write_file out
    (Experiments.Enginebench.snapshot_json ~quick samples);
  Format.printf "wrote %s@." out;
  (* instrumented pass, only when asked for *)
  if selfprof <> None || queue_csv <> None then begin
    Engine.Selfprof.start ();
    Engine.Timeseries.start ();
    List.iter
      (fun (_, _, f) -> ignore (f () : float))
      (Experiments.Enginebench.workloads ~quick);
    Engine.Selfprof.stop ();
    Engine.Timeseries.stop ();
    Format.printf "%a" Engine.Selfprof.pp_summary ();
    if Engine.Sim.tombstone_ratio () > 0.25 then
      Logs.warn (fun m ->
          m
            "tombstone ratio %.0f%%: over a quarter of queue traffic is \
             cancelled events, pure pop-path waste"
            (Engine.Sim.tombstone_ratio () *. 100.));
    (match selfprof with
    | Some path ->
        Engine.Selfprof.write_folded path;
        Format.printf "wrote wall-time flamegraph (%d ns elapsed) to %s@."
          (Engine.Selfprof.elapsed_wall_ns ())
          path
    | None -> ());
    match queue_csv with
    | Some path ->
        queue_csv_of_timeseries path;
        Format.printf "wrote queue-depth series to %s@." path
    | None -> ()
  end;
  0

let quick =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Smaller message counts (CI-sized runs).")

let per_cell =
  Arg.(
    value & flag
    & info [ "per-cell" ]
        ~doc:
          "Disable the cell-train fast path: schedule every ATM cell as its \
           own event (the reference slow path the fast path is gated \
           against).")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Run the measured pass with the (train-granular) trace collector \
           attached, to measure observer overhead on the fast path. The \
           events themselves are discarded.")

let timeseries =
  Arg.(
    value & flag
    & info [ "timeseries" ]
        ~doc:
          "Run the measured pass with the timeseries sampler attached (same \
           purpose as $(b,--trace)).")

let flowstat =
  Arg.(
    value & flag
    & info [ "flowstat" ]
        ~doc:
          "Run the measured pass with per-flow accounting and per-PDU \
           path records enabled (same purpose as $(b,--trace)): both are \
           folded analytically at train commit, so CI asserts \
           events_per_pdu stays within 2x of the flags-off baseline.")

let sample_pdus =
  Arg.(
    value & opt int 0
    & info [ "sample-pdus" ] ~docv:"N"
        ~doc:
          "Deterministically route 1 in $(docv) PDUs through the per-cell \
           path during the measured pass (0 = off).")

let sample_seed =
  Arg.(
    value & opt int 0x5eed
    & info [ "sample-seed" ] ~docv:"SEED"
        ~doc:"Seed for $(b,--sample-pdus).")

let out =
  Arg.(
    value
    & opt string "BENCH_engine-throughput.json"
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Where to write the gated snapshot.")

let selfprof =
  Arg.(
    value
    & opt ~vopt:(Some "selfprof.folded") (some string) None
    & info [ "selfprof" ] ~docv:"FILE"
        ~doc:
          "After the measured pass, re-run the workloads with the \
           wall-clock self-profiler enabled and write the folded \
           flamegraph to $(docv).")

let queue_csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "queue-csv" ] ~docv:"FILE"
        ~doc:
          "During the instrumented pass, sample the event-queue depth \
           and tombstone probes and write them as CSV to $(docv).")

let cmd =
  let doc = "measure the simulator's own wall-clock throughput" in
  Cmd.v
    (Cmd.info "enginebench" ~doc)
    Term.(
      const run $ quick $ per_cell $ trace $ timeseries $ flowstat
      $ sample_pdus $ sample_seed $ out $ selfprof $ queue_csv)

let () = Stdlib.exit (Cmd.eval' cmd)
